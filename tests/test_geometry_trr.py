"""Tests for repro.geometry.trr."""

import pytest

from repro.geometry.point import Point
from repro.geometry.trr import Trr


class TestConstruction:
    def test_from_point_is_degenerate(self):
        trr = Trr.from_point(Point(3.0, 4.0))
        assert trr.is_point()
        assert trr.is_arc()
        assert trr.center() == Point(3.0, 4.0)

    def test_from_points_bounds_all(self):
        pts = [Point(0, 0), Point(10, 0), Point(5, 8)]
        trr = Trr.from_points(pts)
        for p in pts:
            assert trr.contains_point(p)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Trr.from_points([])

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Trr(1.0, 0.0, 0.0, 1.0)


class TestPredicates:
    def test_manhattan_arc_is_degenerate_not_point(self):
        arc = Trr.from_points([Point(0, 0), Point(2, 2)])  # slope +1 segment
        assert arc.is_arc()
        assert not arc.is_point()

    def test_area_of_point_is_zero(self):
        assert Trr.from_point(Point(1, 1)).area() == 0.0

    def test_contains_region(self):
        outer = Trr.from_point(Point(0, 0)).expanded(5.0)
        inner = Trr.from_point(Point(0, 0)).expanded(2.0)
        assert outer.contains(inner)
        assert not inner.contains(outer)


class TestExpansionAndDistance:
    def test_expansion_radius_matches_distance(self):
        core = Trr.from_point(Point(0, 0))
        region = core.expanded(10.0)
        # Points at Manhattan distance exactly 10 are on the boundary.
        assert region.contains_point(Point(10, 0))
        assert region.contains_point(Point(0, -10))
        assert region.contains_point(Point(5, 5))
        assert not region.contains_point(Point(8, 4))

    def test_negative_expansion_raises(self):
        with pytest.raises(ValueError):
            Trr.from_point(Point(0, 0)).expanded(-1.0)

    def test_distance_between_points(self):
        a = Trr.from_point(Point(0, 0))
        b = Trr.from_point(Point(3, 4))
        assert a.distance_to(b) == pytest.approx(7.0)

    def test_distance_is_symmetric(self):
        a = Trr.from_points([Point(0, 0), Point(2, 2)])
        b = Trr.from_point(Point(10, -3))
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_zero_when_overlapping(self):
        a = Trr.from_point(Point(0, 0)).expanded(5.0)
        b = Trr.from_point(Point(4, 0)).expanded(5.0)
        assert a.distance_to(b) == 0.0

    def test_distance_to_point(self):
        region = Trr.from_point(Point(0, 0)).expanded(3.0)
        assert region.distance_to_point(Point(10, 0)) == pytest.approx(7.0)
        assert region.distance_to_point(Point(1, 1)) == 0.0

    def test_expansion_reduces_distance_by_radius(self):
        a = Trr.from_point(Point(0, 0))
        b = Trr.from_point(Point(20, 0))
        assert a.expanded(6.0).distance_to(b) == pytest.approx(14.0)


class TestIntersection:
    def test_intersection_of_expansions_is_balance_arc(self):
        a = Trr.from_point(Point(0, 0))
        b = Trr.from_point(Point(10, 0))
        locus = a.expanded(4.0).intersection(b.expanded(6.0))
        assert locus is not None
        # Every point of the locus is within the two radii.
        for p in locus.sample_points():
            assert a.distance_to_point(p) <= 4.0 + 1e-9
            assert b.distance_to_point(p) <= 6.0 + 1e-9

    def test_intersection_none_when_disjoint(self):
        a = Trr.from_point(Point(0, 0)).expanded(1.0)
        b = Trr.from_point(Point(10, 0)).expanded(1.0)
        assert a.intersection(b) is None

    def test_union_bound_contains_both(self):
        a = Trr.from_point(Point(0, 0)).expanded(1.0)
        b = Trr.from_point(Point(10, 5)).expanded(2.0)
        bound = a.union_bound(b)
        assert bound.contains(a)
        assert bound.contains(b)

    def test_overlap_measure_positive_iff_overlapping_area(self):
        a = Trr.from_point(Point(0, 0)).expanded(3.0)
        b = Trr.from_point(Point(2, 0)).expanded(3.0)
        c = Trr.from_point(Point(100, 0)).expanded(3.0)
        assert a.overlap_measure(b) > 0.0
        assert a.overlap_measure(c) == 0.0


class TestPointQueries:
    def test_nearest_point_inside_is_itself(self):
        region = Trr.from_point(Point(0, 0)).expanded(5.0)
        assert region.nearest_point_to(Point(1, 1)) == Point(1, 1)

    def test_nearest_point_realises_distance(self):
        region = Trr.from_point(Point(0, 0)).expanded(2.0)
        target = Point(10, 0)
        nearest = region.nearest_point_to(target)
        assert nearest.distance_to(target) == pytest.approx(region.distance_to_point(target))
        assert region.contains_point(nearest)

    def test_nearest_points_between_regions(self):
        a = Trr.from_point(Point(0, 0)).expanded(1.0)
        b = Trr.from_point(Point(10, 0)).expanded(2.0)
        pa, pb = a.nearest_points(b)
        assert a.contains_point(pa)
        assert b.contains_point(pb)
        assert pa.distance_to(pb) == pytest.approx(a.distance_to(b))

    def test_corners_are_contained(self):
        region = Trr.from_points([Point(0, 0), Point(6, 2)]).expanded(1.0)
        for corner in region.corners():
            assert region.contains_point(corner)

    def test_sample_points_cover_region(self):
        region = Trr.from_point(Point(0, 0)).expanded(4.0)
        samples = region.sample_points(per_axis=3)
        assert len(samples) == 9
        assert all(region.contains_point(p) for p in samples)

    def test_center_of_expanded_point_is_the_point(self):
        assert Trr.from_point(Point(7, -2)).expanded(3.0).center() == Point(7, -2)
