"""End-to-end tests of the AST-DME router on small instances."""

import pytest

from repro.analysis.skew import skew_report
from repro.analysis.validate import validate_result
from repro.circuits.generator import random_instance
from repro.core.ast_dme import AstDme, AstDmeConfig
from repro.delay.technology import Technology


def route(instance, **config_kwargs):
    config = AstDmeConfig(**config_kwargs)
    return AstDme(config).route(instance)


class TestRoutingBasics:
    def test_tree_contains_all_sinks(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        assert len(result.tree.sinks()) == small_instance.num_sinks

    def test_tree_is_valid(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        assert validate_result(result, intra_bound_ps=10.0) == []

    def test_every_node_is_embedded(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        assert all(node.location is not None for node in result.tree.nodes())

    def test_root_is_at_the_source(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        assert result.tree.root().location.distance_to(small_instance.source) < 1e-6

    def test_wirelength_positive_and_counts_all_edges(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        assert result.wirelength > 0.0
        assert result.wirelength == pytest.approx(result.tree.total_wirelength())

    def test_stats_count_every_merge(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        assert result.stats.total_merges == small_instance.num_sinks - 1
        assert result.stats.passes >= 1

    def test_elapsed_time_recorded(self, small_instance):
        result = route(small_instance)
        assert result.elapsed_seconds > 0.0


class TestSkewConstraints:
    def test_zero_bound_single_group_gives_zero_skew(self, medium_instance):
        result = route(medium_instance, skew_bound_ps=0.0)
        report = skew_report(result.tree)
        assert report.global_skew == pytest.approx(0.0, abs=1e-3)

    def test_intra_group_skew_within_bound(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        report = skew_report(result.tree)
        assert report.max_intra_group_skew_ps <= 10.0 + 1e-6

    def test_single_group_flag_ignores_grouping(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        forced = AstDme(AstDmeConfig(skew_bound_ps=10.0)).route(small_instance, single_group=True)
        report = skew_report(forced.tree)
        # With a single routing group the *global* skew obeys the bound.
        assert report.global_skew_ps <= 10.0 + 1e-6
        # Sink nodes still carry the original group labels for reporting.
        assert sorted({s.group for s in forced.tree.sinks()}) == small_instance.groups()
        # The grouped run generally exploits inter-group freedom; allow a
        # small heuristic-noise margin.
        assert result.wirelength <= forced.wirelength * 1.05

    def test_group_association_is_complete_at_the_end(self, small_instance):
        result = route(small_instance, skew_bound_ps=10.0)
        groups = small_instance.groups()
        for g in groups[1:]:
            assert result.association.associated(groups[0], g)


class TestConfigurationVariants:
    @pytest.fixture
    def instance(self):
        return random_instance("cfg", num_sinks=30, seed=3, layout_size=10_000.0, num_groups=3)

    def test_single_merge_mode(self, instance):
        result = route(instance, skew_bound_ps=10.0, multi_merge=False)
        assert validate_result(result, intra_bound_ps=10.0) == []

    def test_delay_target_ordering(self, instance):
        result = route(instance, skew_bound_ps=10.0, delay_target_weight=1.0)
        assert validate_result(result, intra_bound_ps=10.0) == []

    def test_zero_sdr_budget_still_valid(self, instance):
        result = route(instance, skew_bound_ps=10.0, sdr_skew_budget=0.0)
        assert validate_result(result, intra_bound_ps=10.0) == []

    def test_different_bounds_change_nothing_structural(self, instance):
        for bound in (0.0, 5.0, 50.0):
            result = route(instance, skew_bound_ps=bound)
            report = skew_report(result.tree)
            assert len(result.tree.sinks()) == instance.num_sinks
            assert report.max_intra_group_skew_ps <= bound + 1e-6

    def test_single_sink_instance(self):
        instance = random_instance("one", num_sinks=1, seed=1)
        result = route(instance, skew_bound_ps=10.0)
        assert len(result.tree.sinks()) == 1
        assert result.wirelength == pytest.approx(
            instance.sinks[0].location.distance_to(instance.source)
        )

    def test_two_sink_instance(self):
        instance = random_instance("two", num_sinks=2, seed=2, num_groups=2)
        result = route(instance, skew_bound_ps=10.0)
        assert validate_result(result, intra_bound_ps=10.0) == []

    def test_technology_override(self):
        slow_tech = Technology.scaled(3.0, 1.0)
        instance = random_instance("tech", num_sinks=20, seed=5).with_technology(slow_tech)
        result = route(instance, skew_bound_ps=10.0)
        assert result.tree.technology == slow_tech
        assert validate_result(result, intra_bound_ps=10.0) == []


class TestDeterminism:
    def test_same_instance_same_result(self, small_instance):
        first = route(small_instance, skew_bound_ps=10.0)
        second = route(small_instance, skew_bound_ps=10.0)
        assert first.wirelength == pytest.approx(second.wirelength)
        report_a = skew_report(first.tree)
        report_b = skew_report(second.tree)
        assert report_a.global_skew == pytest.approx(report_b.global_skew)
