"""Property-based tests (hypothesis) for the geometry substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.trr import Trr

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
radii = st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


@settings(max_examples=150, deadline=None)
@given(points, points)
def test_manhattan_distance_symmetry(a, b):
    assert a.distance_to(b) == b.distance_to(a)


@settings(max_examples=150, deadline=None)
@given(points, points, points)
def test_manhattan_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


@settings(max_examples=150, deadline=None)
@given(points)
def test_rotation_roundtrip(p):
    u, v = p.rotated()
    q = Point.from_rotated(u, v)
    assert abs(q.x - p.x) < 1e-6
    assert abs(q.y - p.y) < 1e-6


@settings(max_examples=150, deadline=None)
@given(points, points)
def test_trr_distance_matches_point_distance(a, b):
    assert abs(Trr.from_point(a).distance_to(Trr.from_point(b)) - a.distance_to(b)) < 1e-6


@settings(max_examples=150, deadline=None)
@given(points, radii, points)
def test_expansion_contains_points_within_radius(centre, radius, probe):
    region = Trr.from_point(centre).expanded(radius)
    distance = centre.distance_to(probe)
    if distance <= radius - 1e-6:
        assert region.contains_point(probe, tol=1e-6)
    elif distance >= radius + 1e-6:
        assert not region.contains_point(probe, tol=0.0)


@settings(max_examples=150, deadline=None)
@given(points, points, radii)
def test_expansion_reduces_distance_by_at_most_radius(a, b, radius):
    base = Trr.from_point(a).distance_to(Trr.from_point(b))
    expanded = Trr.from_point(a).expanded(radius).distance_to(Trr.from_point(b))
    assert expanded <= base + 1e-6
    assert expanded >= base - radius - 1e-6


@settings(max_examples=150, deadline=None)
@given(points, points)
def test_nearest_point_realises_distance_to_point(a, b):
    region = Trr.from_point(a).expanded(10.0)
    nearest = region.nearest_point_to(b)
    assert region.contains_point(nearest, tol=1e-6)
    assert abs(nearest.distance_to(b) - region.distance_to_point(b)) < 1e-6


@settings(max_examples=150, deadline=None)
@given(points, points, radii, radii)
def test_nearest_points_realise_region_distance(a, b, ra, rb):
    ta = Trr.from_point(a).expanded(ra)
    tb = Trr.from_point(b).expanded(rb)
    pa, pb = ta.nearest_points(tb)
    assert ta.contains_point(pa, tol=1e-6)
    assert tb.contains_point(pb, tol=1e-6)
    assert abs(pa.distance_to(pb) - ta.distance_to(tb)) < 1e-5


@settings(max_examples=150, deadline=None)
@given(points, points, radii, radii)
def test_intersection_nonempty_iff_radii_cover_distance(a, b, ra, rb):
    ta = Trr.from_point(a)
    tb = Trr.from_point(b)
    d = ta.distance_to(tb)
    locus = ta.expanded(ra).intersection(tb.expanded(rb))
    if ra + rb >= d + 1e-6:
        assert locus is not None
    if locus is not None:
        centre = locus.center()
        assert ta.distance_to_point(centre) <= ra + 1e-5
        assert tb.distance_to_point(centre) <= rb + 1e-5
