"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.circuits.generator import random_instance
from repro.circuits.instance import ClockInstance, Sink
from repro.delay.technology import Technology
from repro.geometry.point import Point


@pytest.fixture
def tech() -> Technology:
    """The default r-benchmark technology."""
    return Technology.r_benchmark()


@pytest.fixture
def tiny_instance() -> ClockInstance:
    """Four sinks in two groups, small coordinates, hand-checkable."""
    sinks = (
        Sink(sink_id=0, location=Point(0.0, 0.0), cap=30.0, group=0),
        Sink(sink_id=1, location=Point(1000.0, 0.0), cap=50.0, group=1),
        Sink(sink_id=2, location=Point(0.0, 1200.0), cap=40.0, group=0),
        Sink(sink_id=3, location=Point(1000.0, 1200.0), cap=60.0, group=1),
    )
    return ClockInstance(name="tiny", sinks=sinks, source=Point(500.0, 600.0))


@pytest.fixture
def small_instance() -> ClockInstance:
    """A 40-sink random instance with 4 intermingled groups (fixed seed)."""
    return random_instance(
        "small", num_sinks=40, seed=11, layout_size=20_000.0, num_groups=4
    )


@pytest.fixture
def medium_instance() -> ClockInstance:
    """A 120-sink random instance, single group (fixed seed)."""
    return random_instance("medium", num_sinks=120, seed=23, layout_size=50_000.0)
