"""Tests for the H-tree trunk hybrid router (repro.core.htree)."""

import pytest

from repro.analysis.validate import validate_result
from repro.api.registry import get_router
from repro.api.spec import InstanceSpec
from repro.circuits.generator import random_instance
from repro.circuits.instance import ClockInstance, Sink
from repro.core.ast_dme import AstDme, AstDmeConfig
from repro.core.htree import HTreeRouter
from repro.delay.elmore import sink_delays
from repro.delay.technology import Technology
from repro.geometry.point import Point
from repro.opt.config import OptConfig


def route_htree(instance, trunk_levels=2, **config_kwargs):
    config = AstDmeConfig(skew_bound_ps=10.0, **config_kwargs)
    return HTreeRouter(config, trunk_levels=trunk_levels).route(instance)


class TestConstruction:
    def test_rejects_negative_trunk_levels(self):
        with pytest.raises(ValueError, match="non-negative"):
            HTreeRouter(trunk_levels=-1)

    def test_zero_trunk_levels_delegates_to_ast_dme(self):
        instance = random_instance("flat", num_sinks=40, seed=3, num_groups=2)
        htree = route_htree(instance, trunk_levels=0)
        plain = AstDme(AstDmeConfig(skew_bound_ps=10.0)).route(
            instance, single_group=True
        )
        assert htree.tree.total_wirelength() == plain.tree.total_wirelength()
        assert htree.single_group is True

    def test_single_sink_instance(self):
        instance = ClockInstance(
            name="one",
            sinks=(Sink(0, Point(500.0, 500.0), 40.0, group=0),),
            source=Point(0.0, 0.0),
        )
        result = route_htree(instance)
        assert validate_result(result, intra_bound_ps=10.0) == []
        assert len(result.tree.sinks()) == 1


class TestRouting:
    def test_routes_within_bound_and_validates(self):
        instance = random_instance("uniform", num_sinks=120, seed=5, num_groups=4)
        result = route_htree(instance)
        assert validate_result(result, intra_bound_ps=10.0) == []
        assert result.single_group is True
        # The trunk bounds every sink against every other: all groups are
        # mutually associated, like a merge spanning them all.
        groups = instance.groups()
        assert all(
            result.association.associated(groups[0], group)
            for group in groups[1:]
        )

    def test_trunk_aligns_whole_tree_spread_to_the_bound(self):
        instance = random_instance("uniform", num_sinks=200, seed=11, num_groups=8)
        result = route_htree(instance, trunk_levels=3)
        delays = sink_delays(result.tree)
        spread = max(delays.values()) - min(delays.values())
        assert spread <= Technology.ps_to_internal(10.0) + 1e-3

    def test_collinear_sinks_use_median_fallback(self):
        sinks = tuple(
            Sink(i, Point(1000.0 * i, 0.0), 30.0, group=0) for i in range(8)
        )
        instance = ClockInstance(name="line", sinks=sinks, source=Point(0.0, 1000.0))
        result = route_htree(instance, trunk_levels=3)
        assert validate_result(result, intra_bound_ps=10.0) == []
        assert len(result.tree.sinks()) == 8

    def test_coincident_sinks_do_not_recurse_forever(self):
        sinks = tuple(
            Sink(i, Point(5000.0, 5000.0), 25.0, group=0) for i in range(4)
        )
        instance = ClockInstance(name="stack", sinks=sinks, source=Point(0.0, 0.0))
        result = route_htree(instance, trunk_levels=2)
        assert validate_result(result, intra_bound_ps=10.0) == []

    def test_blockage_at_trunk_center_escapes_tap(self):
        spec = InstanceSpec.from_family("blocked", num_sinks=80, seed=2, groups=2)
        instance = spec.build()
        obstacles = instance.obstacle_set()
        result = route_htree(
            instance, opt=OptConfig(enabled=True, skew_bound_ps=10.0)
        )
        assert validate_result(result, intra_bound_ps=10.0) == []
        for node in result.tree.nodes():
            if node.location is not None:
                assert not obstacles.blocks_point(node.location)

    def test_more_trunk_levels_add_structure_not_sinks(self):
        instance = random_instance("uniform", num_sinks=64, seed=9, num_groups=1)
        shallow = route_htree(instance, trunk_levels=1)
        deep = route_htree(instance, trunk_levels=3)
        assert len(shallow.tree.sinks()) == len(deep.tree.sinks()) == 64
        assert len(deep.tree) >= len(shallow.tree)


class TestRegistry:
    def test_htree_is_registered(self):
        instance = random_instance("uniform", num_sinks=30, seed=1, num_groups=2)
        router = get_router(
            "h-tree", {"skew_bound_ps": 10.0, "trunk_levels": 1}
        )
        result = router.route(instance)
        assert validate_result(result, intra_bound_ps=10.0) == []

    def test_unknown_options_are_rejected_and_list_shorthand(self):
        with pytest.raises(ValueError, match="trunk_levels"):
            get_router("h-tree", {"bogus_option": 1})
