"""Tests for repro.delay.technology."""

import pytest

from repro.delay.technology import DEFAULT_TECHNOLOGY, Technology


class TestTechnology:
    def test_default_matches_r_benchmark_parameters(self):
        assert DEFAULT_TECHNOLOGY.unit_resistance == pytest.approx(0.003)
        assert DEFAULT_TECHNOLOGY.unit_capacitance == pytest.approx(0.02)
        assert DEFAULT_TECHNOLOGY.source_resistance == 0.0

    def test_r_benchmark_equals_default(self):
        assert Technology.r_benchmark() == DEFAULT_TECHNOLOGY

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            Technology(unit_resistance=0.0)
        with pytest.raises(ValueError):
            Technology(unit_capacitance=-1.0)
        with pytest.raises(ValueError):
            Technology(source_resistance=-0.1)

    def test_ps_conversion_roundtrip(self):
        assert Technology.ps_to_internal(10.0) == pytest.approx(10_000.0)
        assert Technology.internal_to_ps(Technology.ps_to_internal(3.7)) == pytest.approx(3.7)

    def test_scaled_preset(self):
        scaled = Technology.scaled(2.0, 0.5)
        assert scaled.unit_resistance == pytest.approx(0.006)
        assert scaled.unit_capacitance == pytest.approx(0.01)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TECHNOLOGY.unit_resistance = 1.0
