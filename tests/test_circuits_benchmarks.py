"""Tests for benchmark ingestion (ISPD-CNS-style files) and generator families."""

import pytest

from repro.circuits.benchmarks import (
    BenchmarkFormatError,
    GENERATOR_FAMILIES,
    available_families,
    blocked_instance,
    clustered_instance,
    generate_instance,
    load_benchmark,
    ring_instance,
    save_benchmark,
)
from repro.circuits.io import load_instance, save_instance
from repro.geometry.obstacles import Rect
from repro.geometry.point import Point

BENCH_TEXT = """\
# a tiny hand-written CNS benchmark
num sink 3
num blockage 1
source 500.0 500.0
sink 0 100.0 200.0 35.0 1
sink 1 900.0 200.0 42.5
sink 2 500.0 900.0 18.0 0
blockage 200.0 550.0 800.0 800.0
"""


class TestLoadBenchmark:
    def test_parses_sinks_blockages_source(self, tmp_path):
        path = tmp_path / "tiny.cns"
        path.write_text(BENCH_TEXT)
        instance = load_benchmark(path)
        assert instance.name == "tiny"
        assert instance.num_sinks == 3
        assert instance.source == Point(500.0, 500.0)
        assert instance.obstacles == (Rect(200.0, 550.0, 800.0, 800.0),)
        assert instance.sinks[0].group == 1
        assert instance.sinks[1].group == 0  # group defaults to 0
        assert instance.sinks[1].cap == pytest.approx(42.5)

    def test_name_override(self, tmp_path):
        path = tmp_path / "tiny.cns"
        path.write_text(BENCH_TEXT)
        assert load_benchmark(path, name="custom").name == "custom"

    @pytest.mark.parametrize(
        "mutation, match",
        [
            (lambda t: t.replace("num sink 3", "num sink 4"), "declares 4 sinks"),
            (lambda t: t.replace("num blockage 1", "num blockage 2"), "declares 2 blockage"),
            (lambda t: t.replace("source 500.0 500.0\n", ""), "missing a source"),
            (lambda t: t + "source 1.0 1.0\n", "duplicate source"),
            (lambda t: t + "wires 4\n", "unrecognised keyword"),
            (lambda t: t.replace("sink 0 100.0", "sink 0 abc"), "could not convert"),
            (lambda t: t.replace("sink 0 100.0 200.0 35.0 1\n", "sink 0 100.0\n"), "expected 'sink"),
            (lambda t: t.replace("blockage 200.0 550.0 800.0 800.0", "blockage 1 2 3"), "expected 'blockage"),
            (lambda t: t.replace("sink 2 500.0 900.0 18.0 0", "sink 2 500.0 700.0 18.0 0"), "inside a blockage"),
        ],
    )
    def test_malformed_files_fail_loudly(self, tmp_path, mutation, match):
        path = tmp_path / "bad.cns"
        path.write_text(mutation(BENCH_TEXT))
        with pytest.raises(BenchmarkFormatError, match=match):
            load_benchmark(path)

    def test_empty_file_fails(self, tmp_path):
        path = tmp_path / "empty.cns"
        path.write_text("")
        with pytest.raises(BenchmarkFormatError):
            load_benchmark(path)

    def test_format_error_is_a_value_error(self):
        assert issubclass(BenchmarkFormatError, ValueError)


class TestBenchmarkRoundTrip:
    def test_parse_write_parse_equality(self, tmp_path):
        original = tmp_path / "tiny.cns"
        original.write_text(BENCH_TEXT)
        first = load_benchmark(original)
        copy_dir = tmp_path / "copy"
        copy_dir.mkdir()
        save_benchmark(first, copy_dir / "tiny.cns")
        second = load_benchmark(copy_dir / "tiny.cns")
        assert first == second

    def test_generated_instance_round_trips(self, tmp_path):
        instance = blocked_instance("rt", 40, seed=8, layout_size=5_000.0)
        save_benchmark(instance, tmp_path / "rt.cns")
        loaded = load_benchmark(tmp_path / "rt.cns")
        assert loaded.sinks == instance.sinks
        assert loaded.obstacles == instance.obstacles
        assert loaded.source == instance.source

    def test_v1_instance_format_round_trips_blockages(self, tmp_path):
        instance = blocked_instance("v1rt", 25, seed=2, layout_size=5_000.0)
        save_instance(instance, tmp_path / "v1.txt")
        loaded = load_instance(tmp_path / "v1.txt")
        assert loaded == instance


class TestGeneratorFamilies:
    def test_registry_and_availability(self):
        assert available_families() == sorted(GENERATOR_FAMILIES)
        assert {"blocked", "clustered", "ring"} <= set(available_families())

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown generator family"):
            generate_instance("swirl", "x", 10, seed=0)

    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_same_seed_same_instance(self, family):
        a = generate_instance(family, "det", 60, seed=13, layout_size=8_000.0)
        b = generate_instance(family, "det", 60, seed=13, layout_size=8_000.0)
        assert a == b

    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_different_seeds_differ(self, family):
        a = generate_instance(family, "det", 60, seed=1, layout_size=8_000.0)
        b = generate_instance(family, "det", 60, seed=2, layout_size=8_000.0)
        assert a != b

    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_sinks_inside_layout_and_outside_blockages(self, family):
        kwargs = {} if family == "blocked" else {"num_blockages": 3}
        instance = generate_instance(family, "f", 80, seed=5, layout_size=9_000.0, **kwargs)
        obstacles = instance.obstacle_set()
        assert len(obstacles) >= 1
        for sink in instance.sinks:
            assert 0.0 <= sink.location.x <= 9_000.0
            assert 0.0 <= sink.location.y <= 9_000.0
            assert not obstacles.blocks_point(sink.location)
        assert not obstacles.blocks_point(instance.source)

    def test_blocked_default_blockage_count_scales(self):
        small = blocked_instance("s", 30, seed=1)
        large = blocked_instance("l", 400, seed=1)
        assert 2 <= len(small.obstacles) <= len(large.obstacles) <= 12

    def test_ring_sinks_form_an_annulus(self):
        instance = ring_instance("ring", 100, seed=3, layout_size=10_000.0)
        centre = Point(5_000.0, 5_000.0)
        for sink in instance.sinks:
            radius = ((sink.location.x - centre.x) ** 2 + (sink.location.y - centre.y) ** 2) ** 0.5
            assert 0.3 * 10_000.0 - 1e-6 <= radius <= 0.45 * 10_000.0 + 1e-6

    def test_ring_invalid_radii_raise(self):
        with pytest.raises(ValueError, match="radii"):
            ring_instance("r", 10, seed=1, radii=(0.6, 0.7))

    def test_clustered_sinks_cluster(self):
        from repro.circuits.generator import random_instance

        instance = clustered_instance("c", 200, seed=7, layout_size=10_000.0)
        # Spatial clustering shows up as a much smaller average nearest-
        # neighbour distance than a uniform instance of the same size.
        uniform = random_instance("u", 200, seed=7, layout_size=10_000.0)

        def mean_nn(instance):
            points = [s.location for s in instance.sinks]
            total = 0.0
            for p in points:
                total += min(p.distance_to(q) for q in points if q is not p)
            return total / len(points)

        assert mean_nn(instance) < 0.5 * mean_nn(uniform)

    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_invalid_arguments_raise(self, family):
        factory = GENERATOR_FAMILIES[family]
        with pytest.raises(ValueError):
            factory("x", 0, seed=1)
        with pytest.raises(ValueError):
            factory("x", 5, seed=1, num_groups=0)
        with pytest.raises(ValueError):
            factory("x", 5, seed=1, layout_size=-1.0)

    def test_round_robin_groups(self):
        instance = blocked_instance("g", 30, seed=4, num_groups=3)
        assert instance.num_groups == 3
        assert instance.group_sizes() == {0: 10, 1: 10, 2: 10}

    def test_congested_layout_fails_loudly(self):
        with pytest.raises(ValueError, match="disjoint blockages"):
            blocked_instance("x", 10, seed=1, num_blockages=200)
