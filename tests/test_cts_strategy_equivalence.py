"""Equivalence regression: every neighbour strategy routes the same trees.

The ``incremental`` neighbour index and the ``rebuild`` vectorised engine are
pure accelerations of the ``scalar`` seed reference -- routed trees must stay
*identical* (topology exactly, delays / skews / wirelength to 1e-9).  These
tests route the same seeded instances through all strategies and compare the
full embedded trees, the skew reports and the wirelength totals, so any
future drift in the fast paths fails loudly.
"""

from __future__ import annotations

import pytest

from repro.analysis.skew import skew_report
from repro.circuits.generator import random_instance
from repro.circuits.grouping import intermingled_groups
from repro.core.ast_dme import AstDme, AstDmeConfig
from repro.cts.bst import ExtBst
from repro.cts.dme import GreedyDme

TOL = 1e-9


def tree_signature(result):
    """Topology + embedding of a routed tree, as comparable plain data."""
    signature = []
    for node in sorted(result.tree.nodes(), key=lambda n: n.node_id):
        signature.append(
            (
                node.node_id,
                node.kind,
                node.parent,
                tuple(node.children),
                node.edge_length,
                None if node.location is None else (node.location.x, node.location.y),
            )
        )
    return signature


def assert_equivalent(result_a, result_b):
    sig_a, sig_b = tree_signature(result_a), tree_signature(result_b)
    assert sig_a == sig_b, "routed trees must be identical node for node"
    assert result_a.wirelength == pytest.approx(result_b.wirelength, abs=TOL)
    skew_a, skew_b = skew_report(result_a.tree), skew_report(result_b.tree)
    assert skew_a.global_skew == pytest.approx(skew_b.global_skew, abs=TOL)
    assert skew_a.max_delay == pytest.approx(skew_b.max_delay, abs=TOL)
    assert skew_a.per_group_skew.keys() == skew_b.per_group_skew.keys()
    for group, value in skew_a.per_group_skew.items():
        assert value == pytest.approx(skew_b.per_group_skew[group], abs=TOL)


def configs_for(strategy: str, multi_merge: bool = True) -> AstDmeConfig:
    return AstDmeConfig(neighbor_strategy=strategy, multi_merge=multi_merge)


@pytest.mark.parametrize("seed", [3, 17])
def test_greedy_dme_strategies_identical(seed):
    instance = random_instance("equiv-%d" % seed, num_sinks=220, seed=seed)
    reference = GreedyDme(configs_for("scalar")).route(instance)
    for strategy in ("rebuild", "incremental"):
        assert_equivalent(GreedyDme(configs_for(strategy)).route(instance), reference)


def test_greedy_dme_single_merge_strategies_identical():
    instance = random_instance("equiv-single", num_sinks=160, seed=5)
    reference = GreedyDme(configs_for("scalar", multi_merge=False)).route(instance)
    for strategy in ("rebuild", "incremental"):
        assert_equivalent(
            GreedyDme(configs_for(strategy, multi_merge=False)).route(instance),
            reference,
        )


@pytest.mark.parametrize("strategy", ["rebuild", "incremental"])
def test_ast_dme_strategies_identical(strategy):
    instance = intermingled_groups(
        random_instance("equiv-ast", num_sinks=200, seed=9), 6, seed=1
    )
    reference = AstDme(configs_for("scalar")).route(instance)
    assert_equivalent(AstDme(configs_for(strategy)).route(instance), reference)


@pytest.mark.parametrize("strategy", ["rebuild", "incremental"])
def test_ast_dme_delay_target_strategies_identical(strategy):
    """The cost-bias path (delay-target merging order) stays equivalent too."""
    instance = intermingled_groups(
        random_instance("equiv-bias", num_sinks=150, seed=21), 4, seed=2
    )
    config = AstDmeConfig(neighbor_strategy="scalar", delay_target_weight=0.4)
    reference = AstDme(config).route(instance)
    fast = AstDme(
        AstDmeConfig(neighbor_strategy=strategy, delay_target_weight=0.4)
    ).route(instance)
    assert_equivalent(fast, reference)


@pytest.mark.parametrize("strategy", ["rebuild", "incremental"])
def test_ext_bst_strategies_identical(strategy):
    instance = random_instance("equiv-bst", num_sinks=180, seed=27)
    reference = ExtBst(skew_bound_ps=10.0, config=configs_for("scalar")).route(instance)
    assert_equivalent(
        ExtBst(skew_bound_ps=10.0, config=configs_for(strategy)).route(instance),
        reference,
    )
