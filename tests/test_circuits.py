"""Tests for the benchmark-circuit subsystem (instances, generators, grouping, I/O)."""

import pytest

from repro.circuits.generator import random_instance
from repro.circuits.grouping import (
    clustered_groups,
    grouping_mixing_index,
    intermingled_groups,
    striped_groups,
)
from repro.circuits.instance import ClockInstance, Sink
from repro.circuits.io import load_instance, save_instance
from repro.circuits.r_circuits import R_CIRCUIT_SINK_COUNTS, available_circuits, make_r_circuit
from repro.delay.technology import Technology
from repro.geometry.point import Point


class TestSinkAndInstance:
    def test_negative_cap_raises(self):
        with pytest.raises(ValueError):
            Sink(0, Point(0, 0), -1.0)

    def test_duplicate_sink_ids_raise(self):
        sinks = (Sink(0, Point(0, 0), 1.0), Sink(0, Point(1, 1), 1.0))
        with pytest.raises(ValueError):
            ClockInstance("dup", sinks, Point(0, 0))

    def test_empty_instance_raises(self):
        with pytest.raises(ValueError):
            ClockInstance("empty", tuple(), Point(0, 0))

    def test_group_queries(self, small_instance):
        assert small_instance.num_groups == 4
        sizes = small_instance.group_sizes()
        assert sum(sizes.values()) == small_instance.num_sinks
        for group in small_instance.groups():
            assert len(small_instance.sinks_in_group(group)) == sizes[group]

    def test_sink_by_id(self, small_instance):
        sink = small_instance.sinks[5]
        assert small_instance.sink_by_id(sink.sink_id) == sink
        with pytest.raises(KeyError):
            small_instance.sink_by_id(10_000)

    def test_with_groups_requires_full_assignment(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.with_groups({0: 0})

    def test_with_single_group(self, small_instance):
        single = small_instance.with_single_group()
        assert single.num_groups == 1
        assert single.num_sinks == small_instance.num_sinks

    def test_subset(self, small_instance):
        ids = [s.sink_id for s in small_instance.sinks[:7]]
        sub = small_instance.subset(ids)
        assert sub.num_sinks == 7
        with pytest.raises(ValueError):
            small_instance.subset([])

    def test_bounding_box_and_total_cap(self, small_instance):
        xmin, ymin, xmax, ymax = small_instance.bounding_box()
        assert xmin < xmax and ymin < ymax
        assert small_instance.total_sink_capacitance() == pytest.approx(
            sum(s.cap for s in small_instance.sinks)
        )


class TestRandomInstance:
    def test_deterministic_for_a_seed(self):
        a = random_instance("a", 25, seed=42)
        b = random_instance("a", 25, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_instance("a", 25, seed=1)
        b = random_instance("a", 25, seed=2)
        assert a != b

    def test_sinks_inside_layout(self):
        instance = random_instance("a", 50, seed=3, layout_size=1000.0)
        for sink in instance.sinks:
            assert 0.0 <= sink.location.x <= 1000.0
            assert 0.0 <= sink.location.y <= 1000.0

    def test_caps_within_range(self):
        instance = random_instance("a", 50, seed=3, cap_range=(5.0, 6.0))
        assert all(5.0 <= s.cap <= 6.0 for s in instance.sinks)

    def test_round_robin_groups(self):
        instance = random_instance("a", 9, seed=3, num_groups=3)
        assert instance.num_groups == 3
        assert instance.group_sizes() == {0: 3, 1: 3, 2: 3}

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            random_instance("a", 0, seed=1)
        with pytest.raises(ValueError):
            random_instance("a", 5, seed=1, num_groups=0)
        with pytest.raises(ValueError):
            random_instance("a", 5, seed=1, layout_size=0.0)
        with pytest.raises(ValueError):
            random_instance("a", 5, seed=1, cap_range=(5.0, 1.0))


class TestRCircuits:
    def test_available_circuits_sorted_by_size(self):
        names = available_circuits()
        sizes = [R_CIRCUIT_SINK_COUNTS[n] for n in names]
        assert sizes == sorted(sizes)

    def test_r1_sink_count_matches_paper(self):
        assert make_r_circuit("r1").num_sinks == 267

    def test_all_circuits_have_paper_sink_counts(self):
        for name, count in R_CIRCUIT_SINK_COUNTS.items():
            if count > 1000:
                continue  # keep the test fast; large circuits covered elsewhere
            assert make_r_circuit(name).num_sinks == count

    def test_unknown_circuit_raises(self):
        with pytest.raises(ValueError):
            make_r_circuit("r9")

    def test_deterministic(self):
        assert make_r_circuit("r1") == make_r_circuit("r1")

    def test_single_group_by_default(self):
        assert make_r_circuit("r1").num_groups == 1


class TestGrouping:
    def test_clustered_groups_form_spatial_clusters(self):
        instance = random_instance("g", 200, seed=7, layout_size=10_000.0)
        grouped = clustered_groups(instance, 4)
        assert grouped.num_groups == 4
        assert grouping_mixing_index(grouped) < 0.35

    def test_intermingled_groups_are_mixed(self):
        instance = random_instance("g", 200, seed=7, layout_size=10_000.0)
        grouped = intermingled_groups(instance, 4, seed=1)
        assert grouped.num_groups == 4
        assert grouping_mixing_index(grouped) > 0.5

    def test_intermingled_more_mixed_than_clustered(self):
        instance = random_instance("g", 300, seed=9, layout_size=10_000.0)
        clustered = clustered_groups(instance, 6)
        mixed = intermingled_groups(instance, 6, seed=2)
        assert grouping_mixing_index(mixed) > grouping_mixing_index(clustered)

    def test_striped_groups_are_balanced(self):
        instance = random_instance("g", 40, seed=7)
        grouped = striped_groups(instance, 4)
        assert set(grouped.group_sizes().values()) == {10}

    def test_every_group_nonempty(self):
        instance = random_instance("g", 50, seed=7)
        for maker in (
            lambda: clustered_groups(instance, 5),
            lambda: intermingled_groups(instance, 5, seed=0),
            lambda: striped_groups(instance, 5),
        ):
            grouped = maker()
            assert all(size > 0 for size in grouped.group_sizes().values())

    def test_invalid_group_counts_raise(self):
        instance = random_instance("g", 10, seed=7)
        with pytest.raises(ValueError):
            clustered_groups(instance, 0)
        with pytest.raises(ValueError):
            intermingled_groups(instance, 0)
        with pytest.raises(ValueError):
            intermingled_groups(instance, 11)
        with pytest.raises(ValueError):
            striped_groups(instance, 0)

    def test_grouping_preserves_sinks(self):
        instance = random_instance("g", 30, seed=7)
        grouped = intermingled_groups(instance, 3, seed=5)
        assert {s.sink_id for s in grouped.sinks} == {s.sink_id for s in instance.sinks}
        for original, regrouped in zip(instance.sinks, grouped.sinks):
            assert original.location == regrouped.location
            assert original.cap == regrouped.cap


class TestInstanceIo:
    def test_roundtrip(self, tmp_path, small_instance):
        path = tmp_path / "instance.txt"
        save_instance(small_instance, path)
        loaded = load_instance(path)
        assert loaded.name == small_instance.name
        assert loaded.num_sinks == small_instance.num_sinks
        assert loaded.source == small_instance.source
        for original, read_back in zip(small_instance.sinks, loaded.sinks):
            assert read_back.sink_id == original.sink_id
            assert read_back.group == original.group
            assert read_back.location.distance_to(original.location) < 1e-6
            assert read_back.cap == pytest.approx(original.cap)

    def test_roundtrip_preserves_technology(self, tmp_path):
        tech = Technology(unit_resistance=0.01, unit_capacitance=0.05, source_resistance=25.0)
        instance = random_instance("t", 5, seed=1, technology=tech)
        path = tmp_path / "instance.txt"
        save_instance(instance, path)
        assert load_instance(path).technology == tech

    def test_rejects_non_instance_files(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("not an instance\n")
        with pytest.raises(ValueError):
            load_instance(path)

    def test_rejects_malformed_lines(self, tmp_path, small_instance):
        path = tmp_path / "instance.txt"
        save_instance(small_instance, path)
        path.write_text(path.read_text() + "garbage line\n")
        with pytest.raises(ValueError):
            load_instance(path)
