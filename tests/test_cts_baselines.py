"""Tests for the greedy-DME and EXT-BST baseline wrappers."""

import pytest

from repro.analysis.skew import skew_report
from repro.analysis.validate import validate_result
from repro.core.ast_dme import AstDmeConfig
from repro.cts.bst import ExtBst
from repro.cts.dme import GreedyDme


class TestGreedyDme:
    def test_produces_zero_skew_tree(self, small_instance):
        result = GreedyDme().route(small_instance)
        report = skew_report(result.tree)
        assert report.global_skew == pytest.approx(0.0, abs=1e-3)

    def test_ignores_grouping_for_constraints(self, small_instance):
        result = GreedyDme().route(small_instance)
        report = skew_report(result.tree)
        # Every group trivially satisfies any bound because global skew is 0.
        assert report.max_intra_group_skew == pytest.approx(0.0, abs=1e-3)

    def test_result_is_structurally_valid(self, small_instance):
        result = GreedyDme().route(small_instance)
        assert validate_result(result) == []

    def test_inherits_ordering_configuration(self, small_instance):
        router = GreedyDme(AstDmeConfig(multi_merge=False, skew_bound_ps=99.0))
        assert router.config.skew_bound_ps == 0.0  # forced to zero skew
        assert router.config.multi_merge is False
        result = router.route(small_instance)
        assert skew_report(result.tree).global_skew == pytest.approx(0.0, abs=1e-3)


class TestExtBst:
    def test_global_skew_within_bound(self, small_instance):
        result = ExtBst(skew_bound_ps=10.0).route(small_instance)
        report = skew_report(result.tree)
        assert report.global_skew_ps <= 10.0 + 1e-6

    def test_wirelength_not_worse_than_zero_skew(self, medium_instance):
        bounded = ExtBst(skew_bound_ps=10.0).route(medium_instance)
        zero = GreedyDme().route(medium_instance)
        # Relaxing the constraint can only help (up to heuristic noise).
        assert bounded.wirelength <= zero.wirelength * 1.01

    def test_larger_bound_never_validates_worse(self, small_instance):
        result = ExtBst(skew_bound_ps=100.0).route(small_instance)
        report = skew_report(result.tree)
        assert report.global_skew_ps <= 100.0 + 1e-6
        assert validate_result(result) == []

    def test_sink_groups_preserved_for_reporting(self, small_instance):
        result = ExtBst(skew_bound_ps=10.0).route(small_instance)
        assert sorted({s.group for s in result.tree.sinks()}) == small_instance.groups()
