"""Tests for the ECO delta model (repro.eco.delta)."""

from __future__ import annotations

import pytest

from repro.circuits.generator import random_instance
from repro.eco import EcoDelta, EcoDeltaError, SinkAdd, SinkMove
from repro.geometry.obstacles import Rect
from repro.geometry.point import Point


@pytest.fixture(scope="module")
def instance():
    return random_instance("delta-base", 40, seed=5, num_groups=4)


def _move(sink_id, x=1000.0, y=2000.0):
    return SinkMove(sink_id=sink_id, location=Point(x, y))


class TestValidation:
    def test_duplicate_moves_rejected(self):
        with pytest.raises(EcoDeltaError):
            EcoDelta(move=(_move(1), _move(1, 5.0, 5.0)))

    def test_duplicate_removes_rejected(self):
        with pytest.raises(EcoDeltaError):
            EcoDelta(remove=(3, 3))

    def test_move_and_remove_same_sink_rejected(self):
        with pytest.raises(EcoDeltaError):
            EcoDelta(move=(_move(2),), remove=(2,))

    def test_negative_added_cap_rejected(self):
        with pytest.raises(EcoDeltaError):
            SinkAdd(location=Point(0.0, 0.0), cap=-1.0)

    def test_empty_delta_properties(self):
        delta = EcoDelta()
        assert delta.is_empty
        assert delta.num_changes == 0
        assert delta.to_dict() == {}

    def test_iterables_normalise_to_tuples(self):
        delta = EcoDelta(move=[_move(1)], remove=[4, 5])
        assert isinstance(delta.move, tuple)
        assert delta.remove == (4, 5)
        assert delta.num_changes == 3


class TestApply:
    def test_move_relocates_without_changing_id_or_cap(self, instance):
        sink = instance.sinks[7]
        delta = EcoDelta(move=(_move(7, 123.0, 456.0),))
        new = delta.apply(instance)
        moved = next(s for s in new.sinks if s.sink_id == 7)
        assert moved.location == Point(123.0, 456.0)
        assert moved.cap == sink.cap and moved.group == sink.group
        assert new.num_sinks == instance.num_sinks
        assert new.name == instance.name + "+eco"

    def test_added_sinks_get_fresh_sequential_ids(self, instance):
        delta = EcoDelta(
            add=(
                SinkAdd(location=Point(10.0, 10.0), cap=0.05, group=1),
                SinkAdd(location=Point(20.0, 20.0), cap=0.07, group=2),
            )
        )
        expected = delta.added_sink_ids(instance)
        new = delta.apply(instance)
        top = max(s.sink_id for s in instance.sinks)
        assert expected == (top + 1, top + 2)
        added = sorted(
            (s for s in new.sinks if s.sink_id > top), key=lambda s: s.sink_id
        )
        assert [s.sink_id for s in added] == list(expected)
        assert added[0].group == 1 and added[1].group == 2

    def test_remove_drops_the_sink(self, instance):
        new = EcoDelta(remove=(3,)).apply(instance)
        assert all(s.sink_id != 3 for s in new.sinks)
        assert new.num_sinks == instance.num_sinks - 1

    def test_unknown_sink_ids_raise(self, instance):
        with pytest.raises(EcoDeltaError, match="unknown sink ids"):
            EcoDelta(move=(_move(10_000),)).apply(instance)
        with pytest.raises(EcoDeltaError, match="unknown sink ids"):
            EcoDelta(remove=(10_000,)).apply(instance)

    def test_removing_every_sink_raises(self, instance):
        delta = EcoDelta(remove=tuple(s.sink_id for s in instance.sinks))
        with pytest.raises(EcoDeltaError, match="removes every sink"):
            delta.apply(instance)

    def test_blockage_swallowing_a_kept_sink_raises(self, instance):
        sink = instance.sinks[0]
        rect = Rect(
            sink.location.x - 1.0,
            sink.location.y - 1.0,
            sink.location.x + 1.0,
            sink.location.y + 1.0,
        )
        with pytest.raises(EcoDeltaError):
            EcoDelta(add_blockages=(rect,)).apply(instance)

    def test_blockages_append_to_obstacles(self, instance):
        rect = Rect(1.0, 1.0, 2.0, 2.0)
        new = EcoDelta(add_blockages=(rect,)).apply(instance)
        assert rect in new.obstacles
        assert len(new.obstacles) == len(instance.obstacles) + 1


class TestSerialisation:
    def test_round_trip_is_lossless(self):
        delta = EcoDelta(
            add=(SinkAdd(location=Point(1.0, 2.0), cap=0.1, group=3),),
            move=(_move(5, 7.0, 8.0),),
            remove=(9,),
            add_blockages=(Rect(0.0, 0.0, 4.0, 4.0),),
        )
        assert EcoDelta.from_dict(delta.to_dict()) == delta

    def test_unknown_keys_rejected(self):
        with pytest.raises(EcoDeltaError, match="unknown delta keys"):
            EcoDelta.from_dict({"mov": []})

    def test_malformed_entries_rejected(self):
        with pytest.raises(EcoDeltaError, match="malformed delta"):
            EcoDelta.from_dict({"move": [{"sink_id": 1}]})  # no location
        with pytest.raises(EcoDeltaError, match="malformed delta"):
            EcoDelta.from_dict({"add": [{"location": "not-a-pair"}]})
        with pytest.raises(EcoDeltaError, match="malformed delta"):
            EcoDelta.from_dict({"add_blockages": [[1.0, 2.0]]})  # not 4 coords
