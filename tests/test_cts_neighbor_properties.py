"""Property tests for merge-pair selection and the incremental neighbour index.

Seeded-random loops (100 instances each) assert the invariants the merging
loop relies on:

* ``select_merge_pairs`` always returns mutually disjoint pairs with costs
  sorted ascending, for every engine;
* the ``vectorized`` engine selects exactly what the ``scalar`` seed
  reference selects;
* a :class:`~repro.cts.neighbor_index.NeighborIndex` maintained across an
  evolving population selects exactly what a stateless full rebuild selects;
* the degenerate ``k_candidates + 1 > n`` populations (n = 2, 3) are handled
  uniformly by every path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cts.nearest_neighbor import (
    NeighborPairing,
    _candidate_pairs,
    candidate_pairs,
    select_merge_pairs,
)
from repro.cts.neighbor_index import NeighborIndex
from repro.geometry.point import Point
from repro.geometry.trr import Trr


def random_loci(rng: np.random.Generator, n: int, layout: float = 100_000.0):
    """``n`` random loci: a mix of degenerate points and proper regions."""
    pts = rng.uniform(0.0, layout, size=(n, 2))
    radii = rng.uniform(0.0, layout / 50.0, size=n)
    loci = []
    for t in range(n):
        locus = Trr.from_point(Point(float(pts[t, 0]), float(pts[t, 1])))
        if t % 3 == 0:
            locus = locus.expanded(float(radii[t]))
        loci.append(locus)
    return loci


def assert_same_pairing(got: NeighborPairing, ref: NeighborPairing) -> None:
    assert got.pairs == ref.pairs
    assert got.costs == ref.costs


# ----------------------------------------------------------------------
# select_merge_pairs invariants (both engines)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["vectorized", "scalar"])
def test_pairs_disjoint_and_costs_ascending(engine):
    rng = np.random.default_rng(7)
    for trial in range(100):
        n = int(rng.integers(2, 120))
        loci = random_loci(rng, n)
        max_pairs = [None, 1, 3][trial % 3]
        pairing = select_merge_pairs(loci, max_pairs=max_pairs, engine=engine)
        assert len(pairing) >= 1
        used = [index for pair in pairing.pairs for index in pair]
        assert len(used) == len(set(used)), "pairs must be mutually disjoint"
        assert all(0 <= i < j < n for i, j in pairing.pairs)
        assert pairing.costs == sorted(pairing.costs)
        if max_pairs is not None:
            assert len(pairing) <= max_pairs


def test_vectorized_engine_matches_scalar_reference():
    rng = np.random.default_rng(13)
    for trial in range(100):
        n = int(rng.integers(2, 150))
        loci = random_loci(rng, n)
        max_pairs = [None, 1, 4][trial % 3]
        ref = select_merge_pairs(loci, max_pairs=max_pairs, engine="scalar")
        got = select_merge_pairs(loci, max_pairs=max_pairs, engine="vectorized")
        assert_same_pairing(got, ref)


def test_unknown_engine_rejected():
    loci = random_loci(np.random.default_rng(0), 4)
    with pytest.raises(ValueError, match="unknown engine"):
        select_merge_pairs(loci, engine="quantum")


def test_cost_bias_changes_priorities_identically():
    rng = np.random.default_rng(29)
    for _ in range(25):
        n = int(rng.integers(3, 80))
        loci = random_loci(rng, n)
        bias = rng.uniform(-10_000.0, 0.0, size=n).tolist()
        ref = select_merge_pairs(loci, cost_bias=bias, engine="scalar")
        got = select_merge_pairs(loci, cost_bias=bias, engine="vectorized")
        assert_same_pairing(got, ref)


# ----------------------------------------------------------------------
# Incremental index vs stateless rebuild over an evolving population
# ----------------------------------------------------------------------
def _evolve(rng, loci, keys, next_key, removals):
    """Remove ``removals`` random rows (order preserved), append their merges."""
    n = len(loci)
    removed = sorted(rng.choice(n, size=removals, replace=False).tolist())
    removed_set = set(removed)
    survivors = [t for t in range(n) if t not in removed_set]
    new_loci = [loci[t] for t in survivors]
    new_keys = [keys[t] for t in survivors]
    for a, b in zip(removed[0::2], removed[1::2]):
        merged = loci[a].union_bound(loci[b])
        new_loci.append(merged)
        new_keys.append(next_key)
        next_key += 1
    return new_loci, new_keys, next_key


def test_incremental_index_matches_stateless_rebuild():
    """100 evolving populations: maintained index == fresh selection."""
    rng = np.random.default_rng(41)
    for trial in range(100):
        n = int(rng.integers(60, 140))
        loci = random_loci(rng, n)
        keys = list(range(n))
        next_key = n
        index = NeighborIndex()
        for pass_no in range(4):
            max_pairs = [1, None, 2, 1][pass_no]
            ref = select_merge_pairs(loci, max_pairs=max_pairs)
            got = index.select_pairs(loci, keys, max_pairs=max_pairs)
            assert_same_pairing(got, ref)
            removals = int(rng.integers(1, max(2, len(loci) // 10))) * 2
            loci, keys, next_key = _evolve(rng, loci, keys, next_key, removals)


def test_incremental_candidate_sets_match_rebuild():
    rng = np.random.default_rng(43)
    for _ in range(30):
        n = int(rng.integers(60, 120))
        loci = random_loci(rng, n)
        keys = list(range(n))
        next_key = n
        index = NeighborIndex()
        for _pass in range(3):
            got = index.candidate_pairs(loci, keys)
            ref = candidate_pairs(loci)
            got_set = set(zip(got.i.tolist(), got.j.tolist()))
            ref_set = set(zip(ref.i.tolist(), ref.j.tolist()))
            assert got_set == ref_set
            loci, keys, next_key = _evolve(rng, loci, keys, next_key, 4)


def test_staleness_threshold_forces_rebuild():
    """Removing most of the population falls back to a full rebuild."""
    rng = np.random.default_rng(47)
    loci = random_loci(rng, 120)
    keys = list(range(120))
    index = NeighborIndex(staleness_threshold=0.1)
    index.select_pairs(loci, keys, max_pairs=1)
    assert index.full_rebuilds == 1
    # Remove half the population: far beyond a 10% staleness budget.
    loci2 = loci[:60]
    keys2 = keys[:60]
    ref = select_merge_pairs(loci2, max_pairs=1)
    got = index.select_pairs(loci2, keys2, max_pairs=1)
    assert_same_pairing(got, ref)
    assert index.full_rebuilds == 2
    assert index.incremental_passes == 0


def test_incremental_pass_counted():
    rng = np.random.default_rng(53)
    loci = random_loci(rng, 120)
    keys = list(range(120))
    next_key = 120
    index = NeighborIndex()
    index.select_pairs(loci, keys, max_pairs=1)
    loci, keys, next_key = _evolve(rng, loci, keys, next_key, 2)
    index.select_pairs(loci, keys, max_pairs=1)
    assert index.full_rebuilds == 1
    assert index.incremental_passes == 1


def test_keys_none_disables_reuse():
    """Without keys the index must not reuse lists across different loci."""
    rng = np.random.default_rng(59)
    index = NeighborIndex()
    for _ in range(3):
        loci = random_loci(rng, 80)
        ref = select_merge_pairs(loci, max_pairs=1)
        got = index.select_pairs(loci, max_pairs=1)
        assert_same_pairing(got, ref)


def test_keys_none_never_poisons_a_later_keyed_call():
    """A keyed call after keys=None must not diff against positional keys."""
    rng = np.random.default_rng(67)
    index = NeighborIndex()
    index.select_pairs(random_loci(rng, 60))  # keys=None: no cached identity
    loci = random_loci(rng, 60)
    keys = list(range(0, 58)) + [1000, 1001]  # overlaps arange(60) by value
    ref = select_merge_pairs(loci, max_pairs=2)
    got = index.select_pairs(loci, keys, max_pairs=2)
    assert_same_pairing(got, ref)


def test_index_rejects_mismatched_keys_and_bias():
    loci = random_loci(np.random.default_rng(0), 60)
    index = NeighborIndex()
    with pytest.raises(ValueError, match="keys"):
        index.select_pairs(loci, keys=[1, 2, 3])
    with pytest.raises(ValueError, match="cost_bias"):
        index.select_pairs(loci, keys=list(range(60)), cost_bias=[0.0])


# ----------------------------------------------------------------------
# Degenerate populations (the k_candidates + 1 > n reshape case)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [2, 3])
@pytest.mark.parametrize("k_candidates", [1, 2, 8])
def test_candidate_pairs_degenerate_populations(n, k_candidates):
    """n = 2 and n = 3 loci survive every k through the KD-tree path."""
    loci = random_loci(np.random.default_rng(n * 10 + k_candidates), n)
    candidates = _candidate_pairs(loci, k_candidates)
    all_pairs = {(i, j) for i in range(n) for j in range(i + 1, n)}
    got = {(i, j) for _, i, j in candidates}
    # Unordered pairs appear at most once, whatever shape scipy returned for
    # the squeezed k == 1 / k >= n queries; with enough candidates per locus
    # the KD path must produce every pair.
    assert len(candidates) == len(got)
    if k_candidates + 1 >= n:
        assert got == all_pairs
    else:
        assert got and got <= all_pairs
    for dist, i, j in candidates:
        assert dist == loci[i].distance_to(loci[j])


@pytest.mark.parametrize("n", [2, 3])
@pytest.mark.parametrize("engine", ["vectorized", "scalar"])
def test_select_merge_pairs_degenerate_via_kd_path(n, engine):
    """Tiny populations forced through the KD-tree branch select correctly."""
    loci = random_loci(np.random.default_rng(n), n)
    pairing = select_merge_pairs(
        loci, max_pairs=1, k_candidates=8, exhaustive_threshold=0, engine=engine
    )
    assert len(pairing) == 1
    reference = select_merge_pairs(loci, max_pairs=1, engine=engine)
    assert_same_pairing(pairing, reference)


def test_index_degenerate_populations_match_reference():
    rng = np.random.default_rng(61)
    for n in (2, 3, 5):
        loci = random_loci(rng, n)
        index = NeighborIndex(k_candidates=8)
        got = index.select_pairs(loci, keys=list(range(n)), max_pairs=1)
        ref = select_merge_pairs(loci, max_pairs=1)
        assert_same_pairing(got, ref)
        assert index.exhaustive_passes == 1
