"""Tests for the Elmore balancing closed forms (repro.core.balancing)."""

import pytest

from repro.core.balancing import (
    MergeEdges,
    balance_split,
    detour_free_offset_range,
    feasible_offset_interval,
    offset_at_split,
    solve_merge,
    split_for_offset,
)
from repro.delay.technology import Technology
from repro.delay.wire import wire_delay


@pytest.fixture
def tech():
    return Technology.r_benchmark()


class TestMergeEdges:
    def test_total_and_detour(self):
        edges = MergeEdges(ea=300.0, eb=700.0, distance=1000.0)
        assert edges.total == 1000.0
        assert edges.detour == 0.0
        assert not edges.snaked

    def test_snaked_edges(self):
        edges = MergeEdges(ea=1500.0, eb=0.0, distance=1000.0)
        assert edges.detour == pytest.approx(500.0)
        assert edges.snaked

    def test_shorter_than_distance_raises(self):
        with pytest.raises(ValueError):
            MergeEdges(ea=100.0, eb=100.0, distance=1000.0)

    def test_negative_edge_raises(self):
        with pytest.raises(ValueError):
            MergeEdges(ea=-1.0, eb=1001.0, distance=1000.0)


class TestOffsetFunctions:
    def test_offset_endpoints_match_range(self, tech):
        d, ca, cb = 2000.0, 40.0, 90.0
        lo, hi = detour_free_offset_range(d, ca, cb, tech)
        assert offset_at_split(0.0, d, ca, cb, tech) == pytest.approx(lo)
        assert offset_at_split(d, d, ca, cb, tech) == pytest.approx(hi)

    def test_offset_is_monotone_in_split(self, tech):
        d, ca, cb = 1500.0, 20.0, 20.0
        values = [offset_at_split(x, d, ca, cb, tech) for x in (0, 300, 750, 1200, 1500)]
        assert values == sorted(values)

    def test_split_for_offset_inverts_offset_at_split(self, tech):
        d, ca, cb = 3000.0, 55.0, 110.0
        for x in (0.0, 123.0, 1500.0, 2987.0):
            g = offset_at_split(x, d, ca, cb, tech)
            assert split_for_offset(g, d, ca, cb, tech) == pytest.approx(x, abs=1e-6)

    def test_zero_distance_zero_caps(self, tech):
        assert split_for_offset(0.0, 0.0, 0.0, 0.0, tech) == 0.0


class TestFeasibleOffsetInterval:
    def test_zero_bound_pins_offset(self):
        lo, hi = feasible_offset_interval((100.0, 100.0), (250.0, 250.0), bound=0.0)
        assert lo == pytest.approx(150.0)
        assert hi == pytest.approx(150.0)

    def test_bound_widens_interval_symmetrically(self):
        lo, hi = feasible_offset_interval((100.0, 100.0), (250.0, 250.0), bound=40.0)
        assert lo == pytest.approx(110.0)
        assert hi == pytest.approx(190.0)

    def test_existing_spread_consumes_slack(self):
        lo, hi = feasible_offset_interval((90.0, 110.0), (240.0, 260.0), bound=40.0)
        assert hi - lo == pytest.approx(2 * 40.0 - 20.0 - 20.0)

    def test_empty_when_spreads_exceed_bound(self):
        lo, hi = feasible_offset_interval((0.0, 100.0), (0.0, 100.0), bound=10.0)
        assert lo > hi

    def test_negative_bound_raises(self):
        with pytest.raises(ValueError):
            feasible_offset_interval((0.0, 0.0), (0.0, 0.0), bound=-1.0)


class TestSolveMerge:
    def test_detour_free_solution_realises_offset(self, tech):
        d, ca, cb = 2500.0, 30.0, 80.0
        target = 100.0
        edges = solve_merge(d, ca, cb, tech, target)
        assert edges.total == pytest.approx(d)
        achieved = wire_delay(edges.ea, ca, tech) - wire_delay(edges.eb, cb, tech)
        assert achieved == pytest.approx(target, abs=1e-6)

    def test_snaking_towards_a_when_target_too_large(self, tech):
        d, ca, cb = 1000.0, 30.0, 30.0
        _, hi = detour_free_offset_range(d, ca, cb, tech)
        edges = solve_merge(d, ca, cb, tech, hi * 3.0)
        assert edges.snaked
        assert edges.eb == 0.0
        achieved = wire_delay(edges.ea, ca, tech)
        assert achieved == pytest.approx(hi * 3.0, rel=1e-9)

    def test_snaking_towards_b_when_target_too_small(self, tech):
        d, ca, cb = 1000.0, 30.0, 30.0
        lo, _ = detour_free_offset_range(d, ca, cb, tech)
        edges = solve_merge(d, ca, cb, tech, lo * 2.5)
        assert edges.snaked
        assert edges.ea == 0.0

    def test_snaking_disabled_clamps_target(self, tech):
        d, ca, cb = 1000.0, 30.0, 30.0
        _, hi = detour_free_offset_range(d, ca, cb, tech)
        edges = solve_merge(d, ca, cb, tech, hi * 3.0, allow_snaking=False)
        assert not edges.snaked
        assert edges.total == pytest.approx(d)
        assert edges.ea == pytest.approx(d)

    def test_negative_distance_raises(self, tech):
        with pytest.raises(ValueError):
            solve_merge(-1.0, 10.0, 10.0, tech, 0.0)


class TestBalanceSplit:
    def test_equal_subtrees_split_in_half(self, tech):
        edges = balance_split(2000.0, 500.0, 500.0, 60.0, 60.0, tech)
        assert edges.ea == pytest.approx(1000.0)
        assert edges.eb == pytest.approx(1000.0)

    def test_slower_side_gets_less_wire(self, tech):
        # Subtree a is already slower, so the merge point moves towards it.
        edges = balance_split(2000.0, 900.0, 500.0, 60.0, 60.0, tech)
        assert edges.ea < edges.eb

    def test_resulting_delays_are_equal(self, tech):
        d, ta, tb, ca, cb = 3000.0, 700.0, 200.0, 45.0, 120.0
        edges = balance_split(d, ta, tb, ca, cb, tech)
        delay_a = ta + wire_delay(edges.ea, ca, tech)
        delay_b = tb + wire_delay(edges.eb, cb, tech)
        assert delay_a == pytest.approx(delay_b, rel=1e-9)

    def test_large_imbalance_requires_snaking(self, tech):
        # Side b is far too fast even with all the wire: snake towards b.
        edges = balance_split(100.0, 10_000.0, 0.0, 10.0, 10.0, tech)
        assert edges.snaked
        delay_a = 10_000.0 + wire_delay(edges.ea, 10.0, tech)
        delay_b = 0.0 + wire_delay(edges.eb, 10.0, tech)
        assert delay_a == pytest.approx(delay_b, rel=1e-9)
