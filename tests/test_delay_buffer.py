"""Tests for buffer cells/libraries and buffered Elmore delays."""

import json

import pytest

from repro.cts.tree import ClockTree
from repro.delay.buffer import (
    BufferCell,
    BufferLibrary,
    DEFAULT_BUFFER_LIBRARY,
    default_library,
)
from repro.delay.elmore import elmore_delays, sink_delays, subtree_capacitances
from repro.delay.rc_tree import oracle_delays
from repro.delay.technology import Technology
from repro.geometry.point import Point


def build_buffered_tree(cell=None, tech=None):
    """source -> internal(buffer?) -> {sink a, sink b}, 1000 um edges."""
    tree = ClockTree(technology=tech or Technology.r_benchmark())
    sink_a = tree.add_sink(Point(0.0, 0.0), 50.0, group=0)
    sink_b = tree.add_sink(Point(2000.0, 0.0), 50.0, group=0)
    internal = tree.add_internal(
        [sink_a, sink_b], [1000.0, 1000.0], location=Point(1000.0, 0.0)
    )
    if cell is not None:
        tree.set_buffer(internal, cell)
    tree.add_source(Point(1000.0, 500.0), internal, 500.0)
    return tree, sink_a, sink_b, internal


class TestBufferCell:
    def test_stage_delay_is_intrinsic_plus_drive(self):
        cell = BufferCell("x", input_cap=10.0, intrinsic_delay=100.0, drive_resistance=50.0)
        assert cell.stage_delay(0.0) == pytest.approx(100.0)
        assert cell.stage_delay(20.0) == pytest.approx(100.0 + 50.0 * 20.0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(name="", input_cap=1.0, intrinsic_delay=0.0, drive_resistance=1.0), "name"),
            (dict(name="x", input_cap=0.0, intrinsic_delay=0.0, drive_resistance=1.0), "input_cap"),
            (dict(name="x", input_cap=1.0, intrinsic_delay=-1.0, drive_resistance=1.0), "intrinsic_delay"),
            (dict(name="x", input_cap=1.0, intrinsic_delay=0.0, drive_resistance=0.0), "drive_resistance"),
        ],
    )
    def test_rejects_bad_fields(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            BufferCell(**kwargs)

    def test_dict_round_trip(self):
        cell = BufferCell("buf-x2", input_cap=20.0, intrinsic_delay=15000.0, drive_resistance=90.0)
        assert BufferCell.from_dict(json.loads(json.dumps(cell.to_dict()))) == cell

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown buffer cell keys"):
            BufferCell.from_dict({"name": "x", "input_cap": 1.0,
                                  "intrinsic_delay": 0.0, "drive_resistance": 1.0,
                                  "area": 3.0})


class TestBufferLibrary:
    def test_default_library_has_three_strengths(self):
        library = default_library()
        assert len(library) == 3
        assert [cell.name for cell in library] == ["buf-x1", "buf-x2", "buf-x4"]
        assert DEFAULT_BUFFER_LIBRARY == library

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError, match="at least one cell"):
            BufferLibrary(cells=())
        cell = default_library().cells[0]
        with pytest.raises(ValueError, match="duplicate"):
            BufferLibrary(cells=(cell, cell))

    def test_cell_lookup_lists_known_names(self):
        library = default_library()
        assert library.cell("buf-x2").input_cap == 20.0
        with pytest.raises(KeyError, match="buf-x1"):
            library.cell("nope")

    def test_best_cell_prefers_strong_drivers_for_heavy_loads(self):
        library = default_library()
        # Heavy load: the x4 drive resistance wins despite larger input cap.
        assert library.best_cell_for(10_000.0).name == "buf-x4"
        # Tiny load: intrinsic delay dominates; x4 still has the smallest.
        assert library.best_cell_for(0.0).name == "buf-x4"

    def test_json_file_round_trip(self, tmp_path):
        library = default_library()
        path = tmp_path / "lib.json"
        library.save(path)
        assert BufferLibrary.load(path) == library

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown buffer library keys"):
            BufferLibrary.from_dict({"name": "x", "cells": [], "vendor": "acme"})


class TestBufferedElmore:
    def test_buffer_decouples_downstream_cap(self):
        cell = default_library().cell("buf-x2")
        plain, *_ = build_buffered_tree(None)
        buffered, _, _, internal = build_buffered_tree(cell)
        caps_plain = subtree_capacitances(plain)
        caps_buf = subtree_capacitances(buffered)
        # Upstream sees only the input pin, not the 140 fF subtree.
        assert caps_plain[internal] == pytest.approx(140.0)
        assert caps_buf[internal] == pytest.approx(cell.input_cap)
        root = buffered.root().node_id
        assert caps_buf[root] == pytest.approx(cell.input_cap + 0.02 * 500.0)

    def test_buffered_node_delay_is_arrival_at_buffer_input(self):
        cell = default_library().cell("buf-x2")
        tree, sink_a, _, internal = build_buffered_tree(cell)
        delays = elmore_delays(tree)
        # Source edge drives only the wire + input pin: 0.003*500*(5 + 20).
        assert delays[internal] == pytest.approx(0.003 * 500.0 * (5.0 + 20.0))
        # Sinks additionally see the stage delay into the 140 fF internal load.
        stage = cell.intrinsic_delay + cell.drive_resistance * 140.0
        edge = 0.003 * 1000.0 * (0.02 * 1000.0 / 2.0 + 50.0)
        assert delays[sink_a] == pytest.approx(delays[internal] + stage + edge)

    def test_engines_bit_identical_on_buffered_tree(self):
        cell = default_library().cell("buf-x1")
        tree, *_ = build_buffered_tree(cell)
        object_delays = elmore_delays(tree, engine="object")
        arena_delays = elmore_delays(tree, engine="arena")
        assert set(object_delays) == set(arena_delays)
        for node_id, value in object_delays.items():
            assert arena_delays[node_id] == value, node_id  # bit-identical

    def test_oracle_agrees_on_buffered_tree(self):
        cell = default_library().cell("buf-x4")
        tree, *_ = build_buffered_tree(cell)
        fast = sink_delays(tree)
        oracle = oracle_delays(tree, segments_per_edge=6)
        for sink_id, value in fast.items():
            assert oracle[sink_id] == pytest.approx(value, rel=1e-9)

    def test_removing_buffer_restores_plain_delays(self):
        cell = default_library().cell("buf-x2")
        tree, _, _, internal = build_buffered_tree(cell)
        plain, *_ = build_buffered_tree(None)
        tree.set_buffer(internal, None)
        assert sink_delays(tree) == sink_delays(plain)
