"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "r1", "out.txt", "--groups", "4", "--grouping", "clustered"]
        )
        assert args.command == "generate"
        assert args.circuit == "r1"
        assert args.groups == 4

    def test_table_arguments(self):
        args = build_parser().parse_args(["table2", "--circuits", "r1", "--groups", "4", "6"])
        assert args.circuits == ["r1"]
        assert args.groups == [4, 6]

    def test_generate_family_arguments(self):
        args = build_parser().parse_args(
            ["generate", "out.txt", "--family", "blocked", "--sinks", "120", "--blockages", "5"]
        )
        assert args.circuit is None
        assert args.family == "blocked"
        assert args.sinks == 120
        assert args.blockages == 5

    def test_route_benchmark_flag(self):
        args = build_parser().parse_args(["route", "bench.cns", "--benchmark"])
        assert args.benchmark is True


class TestCommands:
    def test_generate_and_route(self, tmp_path, capsys):
        path = tmp_path / "r1.inst"
        assert main(["generate", "r1", str(path), "--groups", "4"]) == 0
        assert path.exists()
        assert main(["route", str(path), "--algorithm", "ast-dme", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "wirelength" in out
        assert "validation     : ok" in out

    def test_route_with_baselines(self, tmp_path, capsys):
        path = tmp_path / "r1.inst"
        main(["generate", "r1", str(path)])
        assert main(["route", str(path), "--algorithm", "greedy-dme"]) == 0
        assert main(["route", str(path), "--algorithm", "ext-bst"]) == 0

    def test_figure_commands(self, capsys):
        assert main(["figure1"]) == 0
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "zero-skew tree" in out
        assert "reduction" in out

    def test_table_command_csv(self, capsys):
        assert main(["table1", "--circuits", "r1", "--groups", "4", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("circuit,")
        assert "AST-DME" in out

    def test_route_json_output(self, tmp_path, capsys):
        path = tmp_path / "r1.inst"
        main(["generate", "r1", str(path), "--groups", "4"])
        capsys.readouterr()
        assert main(["route", str(path), "--json", "--validate"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["issues"] == []
        assert data["wirelength"] > 0.0
        assert data["num_groups"] == 4
        assert data["spec"]["router"]["name"] == "ast-dme"

    def test_generate_family_and_route(self, tmp_path, capsys):
        path = tmp_path / "blocked.inst"
        assert main(
            ["generate", str(path), "--family", "blocked", "--sinks", "60", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "blockages" in out
        assert main(["route", str(path), "--algorithm", "greedy-dme"]) == 0

    def test_generate_requires_circuit_xor_family(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["generate", str(tmp_path / "x.inst")])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["generate", "r1", str(tmp_path / "x.inst"), "--family", "ring"])

    def test_route_benchmark_file(self, tmp_path, capsys):
        from repro.circuits.benchmarks import blocked_instance, save_benchmark

        path = tmp_path / "bench.cns"
        save_benchmark(blocked_instance("b", 40, seed=6, layout_size=20_000.0), path)
        assert main(["route", str(path), "--benchmark", "--algorithm", "greedy-dme"]) == 0
        assert "wirelength" in capsys.readouterr().out
        # Without --benchmark the v1 parser must reject the CNS file loudly
        # -- as one clean error line on stderr, not a traceback.
        assert main(["route", str(path), "--algorithm", "greedy-dme"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")

    def test_routers_lists_registry(self, capsys):
        assert main(["routers"]) == 0
        out = capsys.readouterr().out
        for name in ("ast-dme", "ext-bst", "greedy-dme", "h-tree"):
            assert name in out

    def test_route_h_tree_with_trunk_levels(self, tmp_path, capsys):
        path = tmp_path / "r1.inst"
        main(["generate", "r1", str(path), "--groups", "4"])
        capsys.readouterr()
        assert main(
            ["route", str(path), "--algorithm", "h-tree",
             "--trunk-levels", "3", "--validate", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["issues"] == []
        assert data["spec"]["router"]["options"]["trunk_levels"] == 3

    def test_route_max_cap_enables_buffered_repair(self, tmp_path, capsys):
        path = tmp_path / "blocked.inst"
        main(["generate", str(path), "--family", "blocked",
              "--sinks", "120", "--seed", "1", "--groups", "8"])
        capsys.readouterr()
        assert main(
            ["route", str(path), "--max-cap", "8000", "--validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "repair" in out
        assert "buffers" in out and "inserted" in out
        assert "validation     : ok" in out

    def test_route_buffer_library_file(self, tmp_path, capsys):
        from repro.delay.buffer import default_library

        lib_path = tmp_path / "lib.json"
        default_library().save(lib_path)
        path = tmp_path / "blocked.inst"
        main(["generate", str(path), "--family", "blocked",
              "--sinks", "120", "--seed", "1", "--groups", "8"])
        capsys.readouterr()
        assert main(
            ["route", str(path), "--max-cap", "8000",
             "--buffer-library", str(lib_path), "--validate"]
        ) == 0
        assert "validation     : ok" in capsys.readouterr().out


class TestBatchCommand:
    @staticmethod
    def _write_specs(tmp_path, runs):
        path = tmp_path / "specs.json"
        path.write_text(json.dumps({"runs": runs}))
        return str(path)

    @staticmethod
    def _spec(router="ast-dme", **extra):
        spec = {
            "instance": {"kind": "random", "num_sinks": 15, "seed": 3, "groups": 2},
            "router": {"name": router, "options": {"skew_bound_ps": 10.0}},
        }
        spec.update(extra)
        return spec

    def test_batch_runs_specs(self, tmp_path, capsys):
        path = self._write_specs(tmp_path, [self._spec(label="a"), self._spec("ext-bst", label="b")])
        assert main(["batch", path, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "b" in out and "ok" in out

    def test_batch_json_output(self, tmp_path, capsys):
        path = self._write_specs(tmp_path, [self._spec(label="a")])
        assert main(["batch", path, "--workers", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 1
        assert data[0]["ok"] is True
        assert data[0]["spec"]["label"] == "a"

    def test_batch_exits_nonzero_on_error(self, tmp_path, capsys):
        path = self._write_specs(tmp_path, [self._spec(), self._spec("no-such-router")])
        assert main(["batch", path, "--workers", "1"]) == 1
        assert "ERROR" in capsys.readouterr().out


class TestEcoCommand:
    @staticmethod
    def _base_file(tmp_path):
        path = tmp_path / "base.json"
        path.write_text(
            json.dumps(
                {
                    "instance": {"kind": "random", "num_sinks": 30, "seed": 4, "groups": 3},
                    "router": {"name": "ast-dme", "options": {"skew_bound_ps": 10.0}},
                }
            )
        )
        return str(path)

    @staticmethod
    def _delta_file(tmp_path, delta):
        path = tmp_path / "delta.json"
        path.write_text(json.dumps(delta))
        return str(path)

    def test_eco_happy_path(self, tmp_path, capsys):
        base = self._base_file(tmp_path)
        delta = self._delta_file(
            tmp_path, {"move": [{"sink_id": 2, "location": [1200.0, 3400.0]}]}
        )
        assert main(["eco", "--base", base, "--delta", delta, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "dirty cone" in out
        assert "validation     : ok" in out

    def test_eco_json_output(self, tmp_path, capsys):
        base = self._base_file(tmp_path)
        delta = self._delta_file(tmp_path, {"remove": [5]})
        assert main(["eco", "--base", base, "--delta", delta, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["eco"]["sinks_removed"] == 1
        assert data["num_sinks"] == 29

    def test_eco_parser_requires_base_and_delta(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eco", "--base", "b.json"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eco", "--delta", "d.json"])


class TestErrorSurfaces:
    """Anticipated failures exit 2 with one ``repro: error:`` line on stderr,
    never a traceback (for eco, route and optimize alike)."""

    def _assert_clean_error(self, capsys, code):
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert err.count("\n") == 1  # one line
        assert "Traceback" not in err

    def test_route_missing_instance_file(self, capsys):
        self._assert_clean_error(capsys, main(["route", "/nonexistent/x.inst"]))

    def test_optimize_missing_instance_file(self, capsys):
        self._assert_clean_error(capsys, main(["optimize", "/nonexistent/x.inst"]))

    def test_eco_missing_base_file(self, tmp_path, capsys):
        delta = tmp_path / "d.json"
        delta.write_text("{}")
        self._assert_clean_error(
            capsys,
            main(["eco", "--base", "/nonexistent/base.json", "--delta", str(delta)]),
        )

    def test_eco_missing_delta_file(self, tmp_path, capsys):
        base = TestEcoCommand._base_file(tmp_path)
        self._assert_clean_error(
            capsys, main(["eco", "--base", base, "--delta", "/nonexistent/d.json"])
        )

    def test_eco_invalid_delta_json(self, tmp_path, capsys):
        base = TestEcoCommand._base_file(tmp_path)
        delta = tmp_path / "d.json"
        delta.write_text("{not json")
        self._assert_clean_error(
            capsys, main(["eco", "--base", base, "--delta", str(delta)])
        )
        # And a JSON array instead of an object:
        delta.write_text("[1, 2]")
        self._assert_clean_error(
            capsys, main(["eco", "--base", base, "--delta", str(delta)])
        )

    def test_eco_unknown_delta_key(self, tmp_path, capsys):
        base = TestEcoCommand._base_file(tmp_path)
        delta = TestEcoCommand._delta_file(tmp_path, {"wat": []})
        self._assert_clean_error(
            capsys, main(["eco", "--base", base, "--delta", delta])
        )
        assert True  # message content checked below for the applied case

    def test_eco_inapplicable_delta(self, tmp_path, capsys):
        base = TestEcoCommand._base_file(tmp_path)
        delta = TestEcoCommand._delta_file(
            tmp_path, {"move": [{"sink_id": 99999, "location": [0.0, 0.0]}]}
        )
        assert main(["eco", "--base", base, "--delta", delta]) == 2
        err = capsys.readouterr().err
        assert "unknown sink ids" in err and "Traceback" not in err

    def test_eco_bad_base_spec(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"router": {"name": "ast-dme"}}))  # no instance
        delta = TestEcoCommand._delta_file(tmp_path, {})
        self._assert_clean_error(
            capsys, main(["eco", "--base", str(base), "--delta", delta])
        )


class TestOutputHygiene:
    """The OutputWriter contract: reports on stdout, notes/warnings on stderr,
    --quiet silence, JSON mode emitting nothing but the document."""

    @pytest.fixture()
    def instance(self, tmp_path):
        path = tmp_path / "r1.inst"
        assert main(["generate", "r1", str(path), "--groups", "4"]) == 0
        return str(path)

    def test_quiet_route_prints_nothing(self, instance, capsys):
        capsys.readouterr()
        assert main(["--quiet", "route", instance, "--validate"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_quiet_still_prints_validation_failures(self, tmp_path, capsys):
        # The blocked family's detours break a sub-picosecond bound for sure.
        path = tmp_path / "blk.inst"
        assert main(["generate", str(path), "--family", "blocked", "--sinks", "60"]) == 0
        capsys.readouterr()
        code = main(
            ["--quiet", "route", str(path), "--validate", "--bound-ps", "0.0001"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.out == ""
        assert "VALIDATION" in captured.err

    def test_json_mode_stdout_is_pure_json(self, instance, capsys):
        capsys.readouterr()
        assert main(["route", instance, "--json"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # the whole stream is one JSON document

    def test_quiet_json_still_emits_the_document(self, instance, capsys):
        capsys.readouterr()
        assert main(["--quiet", "route", instance, "--json"]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data["error"] is None


class TestTraceCli:
    """--trace-out NDJSON export and `repro trace summarize`."""

    @pytest.fixture()
    def instance(self, tmp_path):
        path = tmp_path / "r1.inst"
        assert main(["generate", "r1", str(path), "--groups", "4"]) == 0
        return str(path)

    def test_route_trace_out_writes_ndjson(self, instance, tmp_path, capsys):
        from repro.obs.summarize import load_ndjson

        trace_path = tmp_path / "trace.ndjson"
        capsys.readouterr()
        assert main(["route", instance, "--trace-out", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert "trace event(s)" in captured.err  # progress note, not report
        events = load_ndjson(str(trace_path))
        names = {event["name"] for event in events}
        assert {"run", "run.route", "dme.pass", "dme.merge"} <= names

    def test_trace_out_with_json_keeps_stdout_pure(self, instance, tmp_path, capsys):
        trace_path = tmp_path / "trace.ndjson"
        capsys.readouterr()
        assert main(
            ["route", instance, "--json", "--trace-out", str(trace_path)]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["error"] is None
        assert trace_path.exists()

    def test_trace_summarize_renders_table(self, instance, tmp_path, capsys):
        trace_path = tmp_path / "trace.ndjson"
        main(["route", instance, "--trace-out", str(trace_path)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "cum (s)" in out
        assert "run.route" in out

    def test_trace_summarize_json(self, instance, tmp_path, capsys):
        trace_path = tmp_path / "trace.ndjson"
        main(["route", instance, "--trace-out", str(trace_path)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(row["name"] == "run" for row in rows)
        for row in rows:
            assert row["cumulative_seconds"] >= row["self_seconds"] >= 0.0

    def test_trace_summarize_missing_file_is_clean_error(self, tmp_path, capsys):
        capsys.readouterr()
        assert main(["trace", "summarize", str(tmp_path / "nope.ndjson")]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_trace_summarize_malformed_file_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.ndjson"
        bad.write_text("{not json\n", encoding="utf-8")
        capsys.readouterr()
        assert main(["trace", "summarize", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "line 1" in err

    def test_eco_trace_out(self, instance, tmp_path, capsys):
        from repro.obs.summarize import load_ndjson

        base = {
            "instance": {"kind": "file", "path": instance},
            "router": {"name": "ast-dme", "options": {"skew_bound_ps": 10.0}},
        }
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base), encoding="utf-8")
        delta_path = tmp_path / "delta.json"
        delta_path.write_text(
            json.dumps({"move": [{"sink_id": 1, "location": [5000.0, 5000.0]}]}),
            encoding="utf-8",
        )
        trace_path = tmp_path / "eco.ndjson"
        capsys.readouterr()
        assert main(
            ["eco", "--base", str(base_path), "--delta", str(delta_path),
             "--trace-out", str(trace_path)]
        ) == 0
        names = {event["name"] for event in load_ndjson(str(trace_path))}
        assert {"eco", "eco.cone", "eco.stitch", "eco.remerge"} <= names
