"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "r1", "out.txt", "--groups", "4", "--grouping", "clustered"]
        )
        assert args.command == "generate"
        assert args.circuit == "r1"
        assert args.groups == 4

    def test_table_arguments(self):
        args = build_parser().parse_args(["table2", "--circuits", "r1", "--groups", "4", "6"])
        assert args.circuits == ["r1"]
        assert args.groups == [4, 6]


class TestCommands:
    def test_generate_and_route(self, tmp_path, capsys):
        path = tmp_path / "r1.inst"
        assert main(["generate", "r1", str(path), "--groups", "4"]) == 0
        assert path.exists()
        assert main(["route", str(path), "--algorithm", "ast-dme", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "wirelength" in out
        assert "validation     : ok" in out

    def test_route_with_baselines(self, tmp_path, capsys):
        path = tmp_path / "r1.inst"
        main(["generate", "r1", str(path)])
        assert main(["route", str(path), "--algorithm", "greedy-dme"]) == 0
        assert main(["route", str(path), "--algorithm", "ext-bst"]) == 0

    def test_figure_commands(self, capsys):
        assert main(["figure1"]) == 0
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "zero-skew tree" in out
        assert "reduction" in out

    def test_table_command_csv(self, capsys):
        assert main(["table1", "--circuits", "r1", "--groups", "4", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("circuit,")
        assert "AST-DME" in out
