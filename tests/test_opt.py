"""Tests for the repro.opt post-construction optimization subsystem."""

from __future__ import annotations

import json

import pytest

from repro.analysis.validate import validate_result
from repro.api.registry import RouterSpec
from repro.api.runner import run
from repro.api.spec import InstanceSpec, RunSpec
from repro.core.ast_dme import AstDme, AstDmeConfig
from repro.delay.technology import Technology
from repro.opt import (
    BUFFERED_PASSES,
    OptConfig,
    OptReport,
    Optimizer,
    PassOutcome,
    available_passes,
    get_pass,
    optimize_routing,
    register_pass,
    unregister_pass,
)


def _blocked_spec(num_sinks=120, groups=8, router="ast-dme", **spec_kwargs):
    return RunSpec(
        instance=InstanceSpec.from_family("blocked", num_sinks, seed=1, groups=groups),
        router=RouterSpec(router, {"skew_bound_ps": 10.0}),
        **spec_kwargs,
    )


@pytest.fixture(scope="module")
def blocked_routing():
    """One routed-but-unrepaired blocked instance shared by read-only tests."""
    return run(_blocked_spec(), keep_tree=True).routing


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestOptConfig:
    def test_defaults_disabled(self):
        assert OptConfig().enabled is False

    def test_round_trip(self):
        config = OptConfig(
            enabled=True, max_iterations=3, safety=0.5, skew_bound_ps=7.5,
            passes=("skew-repair",),
        )
        data = config.to_dict()
        json.dumps(data)  # JSON-serialisable
        assert OptConfig.from_dict(data) == config

    def test_defaults_serialise_compactly(self):
        data = OptConfig(enabled=True).to_dict()
        assert data == {"enabled": True, "passes": list(OptConfig().passes)}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown opt config keys"):
            OptConfig.from_dict({"enabled": True, "turbo": 11})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"safety": 0.0},
            {"safety": 1.5},
            {"repair_sweeps": 0},
            {"max_added_wire_fraction": -0.1},
            {"polish_steps": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OptConfig(**kwargs)


class TestReports:
    def test_outcome_round_trip(self):
        outcome = PassOutcome(
            name="skew-repair", iteration=1, edges_modified=3, wire_added=12.5
        )
        assert PassOutcome.from_dict(outcome.to_dict()) == outcome

    def test_report_round_trip(self):
        report = OptReport(
            bound_ps=10.0,
            iterations=2,
            converged=True,
            wirelength_before=100.0,
            wirelength_after=105.0,
            skew_violations_before=4,
            skew_violations_after=0,
            passes=[PassOutcome(name="reembed", iteration=0, nodes_moved=2)],
        )
        data = report.to_dict()
        json.dumps(data)
        assert OptReport.from_dict(data) == report

    def test_derived_metrics(self):
        report = OptReport(
            wirelength_before=100.0, wirelength_after=90.0,
            skew_violations_before=4, skew_violations_after=1,
        )
        assert report.wire_added == pytest.approx(-10.0)
        assert report.violations_eliminated_fraction == pytest.approx(0.75)
        assert OptReport(skew_violations_before=0).violations_eliminated_fraction == 1.0


# ----------------------------------------------------------------------
# Pass registry
# ----------------------------------------------------------------------
class TestPassRegistry:
    def test_builtins_registered(self):
        assert available_passes() == [
            "buffer-insert", "reembed", "skew-repair", "wirelength-recovery",
        ]

    def test_get_pass_constructs(self):
        assert get_pass("skew-repair").name == "skew-repair"

    def test_unknown_pass_lists_names(self):
        with pytest.raises(KeyError, match="reembed"):
            get_pass("no-such-pass")

    def test_register_and_unregister(self):
        class NoOpPass:
            name = "no-op"

            def run(self, ctx, iteration):
                return PassOutcome(name=self.name, iteration=iteration)

        register_pass("no-op", NoOpPass)
        try:
            assert "no-op" in available_passes()
            with pytest.raises(ValueError, match="already registered"):
                register_pass("no-op", NoOpPass)
        finally:
            unregister_pass("no-op")
        assert "no-op" not in available_passes()


# ----------------------------------------------------------------------
# The optimizer on real blocked instances
# ----------------------------------------------------------------------
class TestOptimizer:
    def test_repairs_blocked_multi_group_instance(self):
        result = run(_blocked_spec(), keep_tree=True)
        pre = [i for i in validate_result(result.routing, intra_bound_ps=10.0)
               if i.code == "skew"]
        report = optimize_routing(
            result.routing, OptConfig(enabled=True), intra_bound_ps=10.0
        )
        post = [i for i in validate_result(result.routing, intra_bound_ps=10.0)
                if i.code == "skew"]
        assert pre, "the unrepaired blocked tree must violate the bound"
        assert report.skew_violations_before > 0
        assert report.skew_violations_after == 0
        assert report.converged
        assert not post
        assert report.max_intra_skew_after_ps <= 10.0 + 1e-6

    def test_repairs_with_the_arena_elmore_engine(self, monkeypatch):
        """Regression: the repair passes' bulk snapshot-restore loops write
        node attributes in place; without `mark_mutated` the cached arena
        snapshot went stale and the arena Elmore engine (the `auto` choice for
        trees past the size threshold) scored every candidate move against the
        pre-mutation tree, leaving violations unrepaired at bench sizes."""
        import repro.delay.elmore as elmore

        monkeypatch.setattr(elmore, "ARENA_THRESHOLD", 1)
        result = run(_blocked_spec(), keep_tree=True)
        report = optimize_routing(
            result.routing, OptConfig(enabled=True), intra_bound_ps=10.0
        )
        assert report.skew_violations_before > 0
        assert report.skew_violations_after == 0
        assert report.converged

    def test_repair_keeps_tree_valid(self):
        result = run(_blocked_spec(num_sinks=80), keep_tree=True)
        optimize_routing(result.routing, OptConfig(enabled=True), intra_bound_ps=10.0)
        issues = validate_result(result.routing, intra_bound_ps=10.0)
        assert issues == []

    def test_oracle_cross_check_recorded(self):
        result = run(_blocked_spec(num_sinks=60), keep_tree=True)
        report = optimize_routing(
            result.routing, OptConfig(enabled=True), intra_bound_ps=10.0
        )
        assert report.oracle_checked
        # Fast Elmore and the RcTree oracle agree to numerical precision.
        assert report.oracle_max_diff < 1e-3

    def test_single_group_router_repairs_under_validation_bound(self):
        result = run(_blocked_spec(groups=1, router="greedy-dme"), keep_tree=True)
        report = optimize_routing(
            result.routing, OptConfig(enabled=True), intra_bound_ps=10.0
        )
        assert report.skew_violations_after == 0

    def test_needs_a_positive_bound(self):
        result = run(_blocked_spec(num_sinks=40, groups=1), keep_tree=True)
        with pytest.raises(ValueError, match="positive skew bound"):
            Optimizer(OptConfig(enabled=True)).optimize(
                result.routing.tree, bound_for=lambda g: 0.0
            )

    def test_missing_bound_everywhere_raises(self):
        result = run(_blocked_spec(num_sinks=40, groups=1), keep_tree=True)
        with pytest.raises(ValueError, match="skew bound"):
            optimize_routing(result.routing, OptConfig(enabled=True))

    def test_degrading_pass_is_reverted(self, blocked_routing):
        class VandalPass:
            """Doubles every edge length -- strictly worse on every axis."""

            name = "vandal"

            def run(self, ctx, iteration):
                outcome = PassOutcome(name=self.name, iteration=iteration)
                for node in ctx.tree.nodes():
                    if node.parent is not None:
                        ctx.tree.set_edge_length(node.node_id, node.edge_length * 2.0)
                        outcome.edges_modified += 1
                        outcome.wire_added += node.edge_length / 2.0
                return outcome

        tree = blocked_routing.tree
        lengths_before = {n.node_id: n.edge_length for n in tree.nodes()}
        bound = Technology.ps_to_internal(10.0)
        report = Optimizer(
            OptConfig(enabled=True, max_iterations=1, verify_oracle=False),
            passes=[VandalPass()],
        ).optimize(tree, bound_for=lambda g: bound)
        assert all(outcome.reverted for outcome in report.passes)
        assert {n.node_id: n.edge_length for n in tree.nodes()} == lengths_before

    def test_disabled_config_refuses_to_run(self, blocked_routing):
        with pytest.raises(ValueError, match="enabled"):
            Optimizer(OptConfig(skew_bound_ps=10.0)).optimize(blocked_routing.tree)

    def test_wire_budget_is_a_hard_net_cap(self):
        result = run(_blocked_spec(num_sinks=200), keep_tree=True)
        tree = result.routing.tree
        before = tree.total_wirelength()
        cap = 0.02
        report = optimize_routing(
            result.routing,
            OptConfig(enabled=True, max_added_wire_fraction=cap, verify_oracle=False),
            intra_bound_ps=10.0,
        )
        growth = (tree.total_wirelength() - before) / before
        assert growth <= cap + 1e-6
        # A binding budget must be reported honestly, not as convergence.
        if report.skew_violations_after > 0:
            assert not report.converged

    def test_reembed_changes_survive_the_acceptance_gate(self):
        """A pure merge-point move lowers the geometric floor without
        changing any delay; the driver must count that as progress instead
        of reverting it (required-floor term in the quality tuple)."""
        spec = RunSpec(
            instance=InstanceSpec.from_family("blocked", 500, seed=1, groups=8),
            router=RouterSpec("ast-dme", {"skew_bound_ps": 10.0}),
        )
        result = run(spec, keep_tree=True)
        report = optimize_routing(
            result.routing, OptConfig(enabled=True, verify_oracle=False),
            intra_bound_ps=10.0,
        )
        moved = [o for o in report.passes if o.name == "reembed" and o.nodes_moved]
        assert moved, "this instance has re-embeddable detours"
        assert any(not o.reverted for o in moved)

    def test_custom_pass_pipeline_by_name(self, blocked_routing):
        bound = Technology.ps_to_internal(10.0)
        report = Optimizer(
            OptConfig(enabled=True, passes=("skew-repair",), verify_oracle=False)
        ).optimize(blocked_routing.tree, bound_for=lambda g: bound)
        assert {outcome.name for outcome in report.passes} == {"skew-repair"}


# ----------------------------------------------------------------------
# Buffer insertion
# ----------------------------------------------------------------------
class TestBufferInsert:
    def test_noop_without_a_cap_limit(self, blocked_routing):
        bound = Technology.ps_to_internal(10.0)
        report = Optimizer(
            OptConfig(enabled=True, passes=("buffer-insert",), verify_oracle=False)
        ).optimize(blocked_routing.tree, bound_for=lambda g: bound)
        outcome = report.passes[0]
        assert outcome.buffers_inserted == 0
        assert not outcome.changed

    def test_inserts_buffers_and_clears_cap_violations(self):
        spec = _blocked_spec(
            num_sinks=500,
            validate=True,
            opt=OptConfig(enabled=True, passes=BUFFERED_PASSES, max_cap=8000.0),
        )
        result = run(spec, keep_tree=True)
        inserted = sum(p.buffers_inserted for p in result.opt.passes)
        assert inserted >= 1
        assert result.routing.tree.num_buffers() == inserted
        assert result.issues == []
        from repro.delay.elmore import subtree_capacitances

        def over_cap(tree):
            caps = subtree_capacitances(tree)
            return sum(1 for value in caps.values() if value > 8000.0)

        plain = run(_blocked_spec(num_sinks=500), keep_tree=True)
        # Insertion may skip sites where decoupling would hurt skew, so the
        # limit is not a hard guarantee -- but coverage must strictly improve.
        assert over_cap(result.routing.tree) < over_cap(plain.routing.tree)

    def test_insertion_never_degrades_skew(self):
        spec = _blocked_spec(
            opt=OptConfig(enabled=True, passes=BUFFERED_PASSES, max_cap=8000.0),
        )
        report = run(spec).opt
        assert report.skew_violations_after <= report.skew_violations_before

    def test_inline_single_cell_library(self):
        cell = {
            "name": "mono",
            "input_cap": 25.0,
            "intrinsic_delay": 16000.0,
            "drive_resistance": 70.0,
        }
        spec = _blocked_spec(
            validate=True,
            opt=OptConfig(
                enabled=True,
                passes=BUFFERED_PASSES,
                max_cap=8000.0,
                buffer_library=[cell],
            ),
        )
        result = run(spec, keep_tree=True)
        assert sum(p.buffers_inserted for p in result.opt.passes) >= 1
        assert result.issues == []
        buffered = [
            node.buffer
            for node in result.routing.tree.nodes()
            if node.buffer is not None
        ]
        assert {buf.name for buf in buffered} == {"mono"}

    def test_buffered_opt_config_round_trips(self):
        config = OptConfig(
            enabled=True,
            passes=BUFFERED_PASSES,
            max_cap=5000.0,
            buffer_library=[
                {
                    "name": "mono",
                    "input_cap": 25.0,
                    "intrinsic_delay": 16000.0,
                    "drive_resistance": 70.0,
                }
            ],
        )
        data = config.to_dict()
        json.dumps(data)
        assert OptConfig.from_dict(data) == config


# ----------------------------------------------------------------------
# Integration: spec / runner / engine config
# ----------------------------------------------------------------------
class TestApiIntegration:
    def test_run_spec_round_trips_opt_and_tolerance(self):
        spec = _blocked_spec(
            validate=True,
            opt=OptConfig(enabled=True, max_iterations=2),
            locus_tolerance=0.5,
        )
        data = spec.to_dict()
        json.dumps(data)
        restored = RunSpec.from_dict(data)
        assert restored == spec
        assert restored.opt.max_iterations == 2
        assert restored.locus_tolerance == 0.5

    def test_runner_invokes_optimizer_and_validates_post_repair(self):
        result = run(_blocked_spec(validate=True, opt=OptConfig(enabled=True)))
        assert result.opt is not None
        assert result.opt.skew_violations_after == 0
        assert not [i for i in result.issues if i.code == "skew"]
        # The RunResult JSON carries the report.
        restored = type(result).from_dict(result.to_dict())
        assert restored.opt.skew_violations_before == result.opt.skew_violations_before

    def test_runner_without_opt_attaches_no_report(self):
        result = run(_blocked_spec())
        assert result.opt is None
        assert result.to_dict()["opt"] is None

    def test_disabled_opt_block_is_a_no_op(self):
        plain = run(_blocked_spec())
        disabled = run(_blocked_spec(opt=OptConfig(enabled=False)))
        assert disabled.opt is None
        assert disabled.wirelength == plain.wirelength
        assert disabled.skew.global_skew == plain.skew.global_skew

    def test_obstacle_free_run_with_repair_changes_nothing_structural(self):
        spec = RunSpec(
            instance=InstanceSpec.from_random(60, seed=2, groups=4),
            router=RouterSpec("ast-dme", {"skew_bound_ps": 10.0}),
            validate=True,
        )
        plain = run(spec)
        repaired = run(
            RunSpec(
                instance=spec.instance,
                router=spec.router,
                validate=True,
                opt=OptConfig(enabled=True),
            )
        )
        # No violations to fix: the optimizer may reclaim wire (relaxing
        # skew only within the bound), never violate the bound or validity.
        assert repaired.ok
        assert repaired.opt.skew_violations_before == 0
        assert repaired.opt.skew_violations_after == 0
        assert repaired.wirelength <= plain.wirelength + 1e-6

    def test_single_group_semantics_thread_through_runner(self):
        """EXT-BST / greedy-DME results are repaired as one group: the bound
        caps the *global* skew, matching the contract the router enforced,
        even when the instance carries groups."""
        spec = RunSpec(
            instance=InstanceSpec.from_family("blocked", 80, seed=1, groups=8),
            router=RouterSpec("ext-bst", {"skew_bound_ps": 10.0}),
            validate=True,
            opt=OptConfig(enabled=True),
        )
        result = run(spec, keep_tree=True)
        assert result.routing.single_group is True
        assert result.ok
        assert result.skew.global_skew_ps <= 10.0 + 1e-6

    def test_zero_skew_tree_may_relax_toward_the_bound_for_wire(self):
        """Documented trade: enabling repair on a compliant zero-skew tree
        lets recovery reclaim wire while staying within the validation
        bound (docs/optimization.md, "The bound is the contract")."""
        instance = InstanceSpec.from_random(60, seed=2)
        router = RouterSpec("greedy-dme", {"skew_bound_ps": 10.0})
        plain = run(RunSpec(instance=instance, router=router))
        repaired = run(
            RunSpec(
                instance=instance,
                router=router,
                validate=True,
                opt=OptConfig(enabled=True),
            )
        )
        assert plain.skew.global_skew_ps == pytest.approx(0.0, abs=1e-9)
        assert repaired.ok
        assert repaired.wirelength <= plain.wirelength
        assert repaired.skew.global_skew_ps <= 10.0 + 1e-6

    def test_engine_level_opt_config_through_registry(self):
        spec = RunSpec(
            instance=InstanceSpec.from_family("blocked", 80, seed=1, groups=8),
            router=RouterSpec(
                "ast-dme",
                {"skew_bound_ps": 10.0, "opt": {"enabled": True}},
            ),
            validate=True,
        )
        result = run(spec, keep_tree=True)
        assert result.routing.opt is not None
        assert result.opt is not None  # surfaced from the engine, not re-run
        assert result.opt.skew_violations_after == 0

    def test_engine_level_opt_direct(self):
        instance = InstanceSpec.from_family("blocked", 80, seed=1, groups=8).build()
        config = AstDmeConfig(opt=OptConfig(enabled=True))
        result = AstDme(config).route(instance)
        assert result.opt is not None
        assert result.opt.skew_violations_after == 0

    def test_locus_tolerance_threads_through_validation(self, blocked_routing):
        # An artificially displaced node fails the default tolerance and
        # passes a loose one.
        tree = blocked_routing.tree
        victim = next(
            node_id for node_id in blocked_routing.loci if tree.node(node_id).location
        )
        from repro.geometry.point import Point

        original = tree.node(victim).location
        locus = blocked_routing.loci[victim]
        near = locus.nearest_point_to(original)
        try:
            tree.set_location(victim, Point(near.x + 0.01, near.y))
            strict = validate_result(blocked_routing, locus_tolerance=1e-6)
            loose = validate_result(blocked_routing, locus_tolerance=1.0)
            assert any(
                i.code == "locus" and "node %d " % victim in i.message for i in strict
            )
            assert not any(
                i.code == "locus" and "node %d " % victim in i.message for i in loose
            )
        finally:
            tree.set_location(victim, original)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_version_flag(self, capsys):
        import repro
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_route_repair_and_tolerance_arguments(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["route", "x.inst", "--repair", "--tolerance", "0.5"]
        )
        assert args.repair is True
        assert args.tolerance == 0.5

    def test_optimize_subcommand_repairs(self, tmp_path, capsys):
        from repro.circuits.benchmarks import generate_instance
        from repro.circuits.io import save_instance
        from repro.cli import main

        instance = generate_instance("blocked", "b", num_sinks=80, seed=1, num_groups=8)
        path = tmp_path / "blocked.inst"
        save_instance(instance, path)
        assert main(["optimize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repair" in out
        assert "validation     : ok" in out

    def test_optimize_rejects_unknown_pass(self, tmp_path):
        from repro.circuits.benchmarks import generate_instance
        from repro.circuits.io import save_instance
        from repro.cli import main

        instance = generate_instance("blocked", "b", num_sinks=20, seed=1)
        path = tmp_path / "blocked.inst"
        save_instance(instance, path)
        with pytest.raises(SystemExit, match="unknown optimization pass"):
            main(["optimize", str(path), "--passes", "warp-drive"])

    def test_route_repair_smoke(self, tmp_path, capsys):
        from repro.circuits.benchmarks import generate_instance
        from repro.circuits.io import save_instance
        from repro.cli import main

        instance = generate_instance("blocked", "b", num_sinks=80, seed=1, num_groups=8)
        path = tmp_path / "blocked.inst"
        save_instance(instance, path)
        assert main(["route", str(path), "--repair", "--validate"]) == 0
        assert "repair" in capsys.readouterr().out