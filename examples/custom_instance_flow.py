#!/usr/bin/env python3
"""A full custom flow: build your own instance, route, export, and re-check.

Demonstrates the pieces a downstream user typically needs beyond the canned
benchmarks:

* building a :class:`ClockInstance` from explicit sink data (e.g. parsed from
  a placement), with per-group skew requirements,
* saving / reloading the instance in the plain-text interchange format,
* routing with a custom technology and configuration,
* exporting the rectilinear wiring of every edge,
* re-deriving delays with the independent RC oracle.

Run with:  python examples/custom_instance_flow.py
"""

import tempfile
from pathlib import Path

from repro import (
    ClockInstance,
    Point,
    RcTree,
    Sink,
    Technology,
    get_router,
    load_instance,
    route_edges,
    save_instance,
    skew_report,
)


def build_instance() -> ClockInstance:
    """A small two-clock-domain block: 12 registers in 3 groups."""
    registers = [
        # (x, y, load fF, group)
        (1_000.0, 1_000.0, 35.0, 0),
        (2_500.0, 1_200.0, 42.0, 1),
        (4_200.0, 900.0, 28.0, 0),
        (5_800.0, 1_500.0, 55.0, 2),
        (1_400.0, 3_200.0, 31.0, 1),
        (3_100.0, 3_600.0, 47.0, 2),
        (4_900.0, 3_300.0, 39.0, 0),
        (6_200.0, 3_900.0, 26.0, 1),
        (1_800.0, 5_400.0, 44.0, 2),
        (3_500.0, 5_800.0, 33.0, 0),
        (5_200.0, 5_500.0, 51.0, 1),
        (6_500.0, 6_100.0, 29.0, 2),
    ]
    sinks = tuple(
        Sink(sink_id=i, location=Point(x, y), cap=cap, group=group)
        for i, (x, y, cap, group) in enumerate(registers)
    )
    technology = Technology(unit_resistance=0.003, unit_capacitance=0.02, source_resistance=50.0)
    return ClockInstance(name="block-a", sinks=sinks, source=Point(3_750.0, 0.0), technology=technology)


def main() -> None:
    instance = build_instance()

    # Persist and reload the instance (the file is human-readable).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "block-a.inst"
        save_instance(instance, path)
        instance = load_instance(path)
        print("instance file:")
        print("  " + "\n  ".join(path.read_text().splitlines()[:6]) + "\n  ...")

    # Different groups may have different skew requirements; the registry's
    # ast-dme adapter accepts them as the per_group_bounds_ps shorthand.
    router = get_router(
        "ast-dme",
        {
            "skew_bound_ps": 10.0,
            "multi_merge": False,
            "per_group_bounds_ps": {0: 5.0, 1: 10.0, 2: 20.0},
            "default_bound_ps": 10.0,
        },
    )
    result = router.route(instance)

    report = skew_report(result.tree)
    print("\nrouted %d sinks, wirelength %.0f um" % (instance.num_sinks, result.wirelength))
    for group in instance.groups():
        print("  group %d skew: %6.2f ps" % (group, report.group_skew_ps(group)))
    print("  global skew : %6.2f ps" % report.global_skew_ps)

    # Export the physical wiring (L-shapes plus snaking serpentines).
    routes = route_edges(result.tree)
    total_routed = sum(route.length for route in routes.values())
    print("\nexported %d wire routes, total routed length %.0f um" % (len(routes), total_routed))
    sample = next(iter(routes.values()))
    print("  first route: %s" % " -> ".join("(%.0f, %.0f)" % (p.x, p.y) for p in sample.points))

    # Independent re-derivation of the delays (the "SPICE" stand-in).
    oracle = RcTree.from_clock_tree(result.tree)
    worst = max(oracle.elmore_delays()[s.node_id] for s in result.tree.sinks())
    print("\nworst insertion delay (RC oracle): %.1f ps" % (worst / 1000.0))


if __name__ == "__main__":
    main()
