#!/usr/bin/env python3
"""Wirelength vs skew-bound trade-off (the Figure 1 story, at benchmark scale).

Routes one benchmark with a range of intra-group skew bounds and prints how
the wirelength and the achieved skews move: the looser the constraint, the
cheaper the tree -- which is exactly why dropping *inter-group* constraints
(the associative-skew formulation) pays off.

Run with:  python examples/skew_bound_tradeoff.py
"""

from repro import AstDme, AstDmeConfig, intermingled_groups, make_r_circuit, skew_report


def main() -> None:
    instance = intermingled_groups(make_r_circuit("r1"), num_groups=8, seed=7)
    print("circuit r1, 8 intermingled groups, %d sinks" % instance.num_sinks)
    print("%10s  %12s  %12s  %12s" % ("bound(ps)", "wirelength", "intra(ps)", "global(ps)"))

    reference = None
    for bound_ps in (0.0, 5.0, 10.0, 25.0, 50.0, 100.0):
        result = AstDme(AstDmeConfig(skew_bound_ps=bound_ps)).route(instance)
        report = skew_report(result.tree)
        if reference is None:
            reference = result.wirelength
        print(
            "%10.0f  %12.0f  %12.2f  %12.2f   (%+.2f%% vs zero-skew)"
            % (
                bound_ps,
                result.wirelength,
                report.max_intra_group_skew_ps,
                report.global_skew_ps,
                (result.wirelength - reference) / reference * 100.0,
            )
        )


if __name__ == "__main__":
    main()
