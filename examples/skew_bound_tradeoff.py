#!/usr/bin/env python3
"""Wirelength vs skew-bound trade-off (the Figure 1 story, at benchmark scale).

Routes one benchmark with a range of intra-group skew bounds and prints how
the wirelength and the achieved skews move: the looser the constraint, the
cheaper the tree -- which is exactly why dropping *inter-group* constraints
(the associative-skew formulation) pays off.

The sweep is a declarative list of ``RunSpec``s executed by the parallel
``BatchRunner``: results come back in spec order, bit-identical to a serial
run, with per-run errors captured instead of aborting the sweep.

Run with:  python examples/skew_bound_tradeoff.py
"""

from repro import BatchRunner, InstanceSpec, RouterSpec, RunSpec

BOUNDS_PS = (0.0, 5.0, 10.0, 25.0, 50.0, 100.0)


def main() -> None:
    instance = InstanceSpec.from_circuit("r1", groups=8, grouping="intermingled")
    specs = [
        RunSpec(
            instance=instance,
            router=RouterSpec("ast-dme", {"skew_bound_ps": bound_ps}),
            label="bound-%.0fps" % bound_ps,
        )
        for bound_ps in BOUNDS_PS
    ]
    results = BatchRunner().run(specs)  # parallel across CPU cores

    first_ok = next((r for r in results if r.error is None), None)
    if first_ok is None:
        raise SystemExit("every run failed: %s" % results[0].error.splitlines()[0])
    print("circuit r1, 8 intermingled groups, %d sinks" % first_ok.num_sinks)
    print("%10s  %12s  %12s  %12s" % ("bound(ps)", "wirelength", "intra(ps)", "global(ps)"))
    # The comparison column is only meaningful against the 0 ps run itself.
    reference = results[0].wirelength if results[0].error is None else None
    for bound_ps, result in zip(BOUNDS_PS, results):
        if result.error is not None:
            print("%10.0f  FAILED: %s" % (bound_ps, result.error.splitlines()[0]))
            continue
        row = "%10.0f  %12.0f  %12.2f  %12.2f" % (
            bound_ps,
            result.wirelength,
            result.max_intra_group_skew_ps,
            result.global_skew_ps,
        )
        if reference is not None:
            row += "   (%+.2f%% vs zero-skew)" % (
                (result.wirelength - reference) / reference * 100.0
            )
        print(row)


if __name__ == "__main__":
    main()
