#!/usr/bin/env python3
"""Quickstart: route one associative-skew instance and inspect the result.

Builds the smallest paper benchmark (r1), splits its sinks into 8 intermingled
groups, routes it with AST-DME, and prints wirelength, skews and the EXT-BST
comparison -- the whole public API in ~40 lines.

Run with:  python examples/quickstart.py
"""

from repro import (
    AstDme,
    AstDmeConfig,
    ExtBst,
    intermingled_groups,
    make_r_circuit,
    reduction_percent,
    skew_report,
    validate_result,
    wirelength_report,
)


def main() -> None:
    # 1. Build an instance: the r1 benchmark with 8 intermingled sink groups.
    instance = intermingled_groups(make_r_circuit("r1"), num_groups=8, seed=7)
    print("instance   : %s (%d sinks, %d groups)" % (instance.name, instance.num_sinks, instance.num_groups))

    # 2. Route it with AST-DME: 10 ps skew bound inside each group, nothing
    #    between groups.
    router = AstDme(AstDmeConfig(skew_bound_ps=10.0))
    result = router.route(instance)

    # 3. Inspect the tree.
    wl = wirelength_report(result.tree)
    skew = skew_report(result.tree)
    print("wirelength : %.0f um (%.1f%% of it is balancing detour)" % (wl.total, 100 * wl.snaking_fraction))
    print("intra skew : %.2f ps (bound 10 ps)" % skew.max_intra_group_skew_ps)
    print("global skew: %.2f ps (unconstrained across groups)" % skew.global_skew_ps)

    # 4. Verify it: structural, geometric and electrical checks.
    issues = validate_result(result, intra_bound_ps=10.0)
    print("validation : %s" % ("ok" if not issues else issues))

    # 5. Compare against the conventional answer (EXT-BST, one global bound).
    baseline = ExtBst(skew_bound_ps=10.0).route(instance)
    print("EXT-BST    : %.0f um" % baseline.wirelength)
    print("reduction  : %.2f%%" % reduction_percent(baseline.wirelength, result.wirelength))


if __name__ == "__main__":
    main()
