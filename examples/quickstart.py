#!/usr/bin/env python3
"""Quickstart: route one associative-skew instance through the repro.api facade.

Describes a run declaratively (instance source + router + analyses) as a
``RunSpec``, executes it with ``run``, and compares against the EXT-BST
baseline -- the whole public API in ~40 lines.  ``RunSpec`` and ``RunResult``
round-trip through JSON, so everything printed here can be cached or shipped
to another process verbatim.

Run with:  python examples/quickstart.py
"""

import json

from repro import InstanceSpec, RouterSpec, RunResult, RunSpec, reduction_percent, run


def main() -> None:
    # 1. Describe the run as data: the r1 benchmark with 8 intermingled sink
    #    groups, routed by AST-DME with a 10 ps bound inside each group
    #    (nothing between groups), with full validation.
    spec = RunSpec(
        instance=InstanceSpec.from_circuit("r1", groups=8, grouping="intermingled"),
        router=RouterSpec("ast-dme", {"skew_bound_ps": 10.0}),
        validate=True,
    )

    # 2. Execute it.
    result = run(spec)
    print("instance   : %s (%d sinks, %d groups)"
          % (result.instance_name, result.num_sinks, result.num_groups))
    print("wirelength : %.0f um (%.1f%% of it is balancing detour)"
          % (result.wire.total, 100 * result.wire.snaking_fraction))
    print("intra skew : %.2f ps (bound 10 ps)" % result.max_intra_group_skew_ps)
    print("global skew: %.2f ps (unconstrained across groups)" % result.global_skew_ps)
    print("validation : %s" % ("ok" if result.ok else result.issues))

    # 3. The same instance through the conventional answer (EXT-BST, one
    #    global bound) -- only the router name changes.
    baseline = run(
        RunSpec(instance=spec.instance, router=RouterSpec("ext-bst", {"skew_bound_ps": 10.0}))
    )
    print("EXT-BST    : %.0f um" % baseline.wirelength)
    print("reduction  : %.2f%%" % reduction_percent(baseline.wirelength, result.wirelength))

    # 4. Results are plain data: JSON out, JSON back in.
    payload = json.dumps(result.to_dict())
    restored = RunResult.from_dict(json.loads(payload))
    assert restored.wirelength == result.wirelength
    print("json       : %d bytes, round-trips losslessly" % len(payload))


if __name__ == "__main__":
    main()
