#!/usr/bin/env python3
"""Obstacle-aware routing end to end: benchmark file in, clean wiring out.

Demonstrates the blockage-handling pieces added on top of the canned
obstacle-free benchmarks:

* generating a ``blocked``-family instance (uniform sinks dodging macro
  blockages) and writing it as an ISPD-CNS-style benchmark file,
* re-ingesting that file with :func:`repro.load_benchmark`,
* routing it through the registry (the embedding books detour wire around
  the blockages automatically),
* realising the rectilinear wiring with the same obstacles and verifying
  that no segment crosses a blockage interior.

Run with:  python examples/blocked_benchmark_flow.py
"""

import tempfile
from pathlib import Path

from repro import (
    generate_instance,
    get_router,
    load_benchmark,
    route_edges,
    save_benchmark,
    skew_report,
    validate_routes,
    validate_tree,
)


def main() -> None:
    instance = generate_instance(
        "blocked", "blocked-demo", num_sinks=150, seed=11, layout_size=40_000.0,
        num_groups=4,
    )
    print(
        "generated %s: %d sinks, %d blockages (%.1f%% of the layout area)"
        % (
            instance.name,
            instance.num_sinks,
            len(instance.obstacles),
            100.0 * instance.obstacle_set().total_area() / 40_000.0**2,
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "blocked-demo.cns"
        save_benchmark(instance, path)
        reloaded = load_benchmark(path)
        assert reloaded.sinks == instance.sinks
        print("round-tripped through the CNS benchmark format: %s" % path.name)

        for name in ("ast-dme", "greedy-dme"):
            result = get_router(name, {"skew_bound_ps": 10.0}).route(reloaded)
            issues = validate_tree(result.tree, reloaded)
            blockage = [i for i in issues if i.code == "blockage"]
            routes = route_edges(result.tree, obstacles=reloaded.obstacle_set())
            crossing = validate_routes(routes, reloaded.obstacle_set())
            print(
                "%-10s wirelength %.0f  (detour wire %.0f)  "
                "global skew %.1f ps  blockage issues %d  crossing segments %d"
                % (
                    name,
                    result.wirelength,
                    result.stats.obstacle_detour,
                    skew_report(result.tree).global_skew_ps,
                    len(blockage),
                    len(crossing),
                )
            )


if __name__ == "__main__":
    main()
