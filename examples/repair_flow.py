#!/usr/bin/env python3
"""Post-construction repair end to end: broken skew in, bounded skew out.

On heavily-blocked instances the blockage-blind merge phase balances delays
that the obstacle-aware embedding then un-balances with detour wire, and
validation honestly reports ``skew`` issues.  This example shows the
``repro.opt`` subsystem fixing that:

* route a ``blocked``-family instance and count the post-route ``skew``
  validation issues,
* repair the tree in place through the api facade (``RunSpec.opt``),
* re-validate, print the before/after report, and realise the repaired
  wiring (snaking serpentines stay clear of every blockage).

Run with:  python examples/repair_flow.py
"""

from repro import (
    InstanceSpec,
    OptConfig,
    RouterSpec,
    RunSpec,
    route_edges,
    run,
    validate_result,
    validate_routes,
)


def main() -> None:
    instance_spec = InstanceSpec.from_family(
        "blocked", num_sinks=300, seed=1, groups=8
    )
    router = RouterSpec("ast-dme", {"skew_bound_ps": 10.0})

    # --- without repair: the detour wire breaks the 10 ps bound -----------
    broken = run(RunSpec(instance=instance_spec, router=router, validate=True))
    skew_issues = [i for i in broken.issues if i.code == "skew"]
    print(
        "unrepaired: wirelength %.0f, worst intra-group skew %.1f ps, "
        "%d skew issue(s)"
        % (broken.wirelength, broken.max_intra_group_skew_ps, len(skew_issues))
    )

    # --- with repair: same spec plus an opt block -------------------------
    repaired = run(
        RunSpec(
            instance=instance_spec,
            router=router,
            validate=True,
            opt=OptConfig(enabled=True),
        ),
        keep_tree=True,
    )
    report = repaired.opt
    print(
        "repaired:   wirelength %.0f (%+.1f%%), worst intra-group skew %.1f ps, "
        "%d skew issue(s)"
        % (
            repaired.wirelength,
            100.0 * report.wire_added / report.wirelength_before,
            repaired.max_intra_group_skew_ps,
            len([i for i in repaired.issues if i.code == "skew"]),
        )
    )
    print(
        "            %d -> %d violating group(s) in %d iteration(s); passes: %s"
        % (
            report.skew_violations_before,
            report.skew_violations_after,
            report.iterations,
            ", ".join(
                sorted({outcome.name for outcome in report.passes if outcome.changed})
            )
            or "none needed",
        )
    )
    assert repaired.ok, "repair must leave a fully valid tree"

    # --- the repaired tree still realises obstacle-safe wiring ------------
    obstacles = repaired.routing.instance.obstacle_set()
    routes = route_edges(repaired.routing.tree, obstacles=obstacles)
    crossing = validate_routes(routes, obstacles)
    post_validation = validate_result(repaired.routing, intra_bound_ps=10.0)
    print(
        "realised %d rectilinear routes: %d blockage-crossing segment(s), "
        "%d validation issue(s)"
        % (len(routes), len(crossing), len(post_validation))
    )


if __name__ == "__main__":
    main()
