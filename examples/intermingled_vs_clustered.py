#!/usr/bin/env python3
"""The paper's central comparison: clustered vs intermingled sink groups.

Sweeps the number of groups on one benchmark circuit for both grouping styles
and prints a Table I / Table II style comparison, showing that the wirelength
advantage of AST-DME comes from the *difficult* (intermingled) instances.

Run with:  python examples/intermingled_vs_clustered.py [circuit]
"""

import sys

from repro import format_table, make_r_circuit
from repro.circuits.grouping import clustered_groups, intermingled_groups
from repro.experiments.runner import ExperimentConfig, sweep_circuit


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "r1"
    instance = make_r_circuit(circuit)
    config = ExperimentConfig(group_counts=(4, 6, 8, 10), skew_bound_ps=10.0)

    clustered_rows = sweep_circuit(instance, clustered_groups, config)
    print(format_table(clustered_rows, title="Clustered sink groups (Table I style)"))
    print()

    def intermingled(base, num_groups):
        return intermingled_groups(base, num_groups, seed=7)

    intermingled_rows = sweep_circuit(instance, intermingled, config)
    print(format_table(intermingled_rows, title="Intermingled sink groups (Table II style)"))

    best_clustered = max(r.reduction_pct for r in clustered_rows[1:])
    best_intermingled = max(r.reduction_pct for r in intermingled_rows[1:])
    print()
    print("best clustered reduction   : %.2f%%" % best_clustered)
    print("best intermingled reduction: %.2f%%" % best_intermingled)
    print("=> the gain comes from the difficult (intermingled) instances.")


if __name__ == "__main__":
    main()
