#!/usr/bin/env python3
"""The routing service end to end: serve, miss cold, hit hot, stream a batch.

``repro.service`` fronts the routers with a content-addressed two-tier
``RunSpec -> RunResult`` cache behind a stdlib-only asyncio HTTP server.
This example runs the whole loop in one process:

* start a server on an ephemeral port with an on-disk cache tier,
* route one spec cold (a cache miss paying the CTS runtime) and again hot
  (a cache hit, byte-identical result in a fraction of the time),
* stream a mixed batch over ``POST /batch`` and watch cached entries arrive
  before the fresh computes finish,
* read the cache and latency counters from ``GET /stats``.

Run with:  python examples/service_flow.py
"""

import tempfile
import time

from repro import (
    InstanceSpec,
    RouterSpec,
    RunSpec,
    ServerThread,
    ServiceClient,
    ServiceConfig,
)
from repro.service import BatchEvent


def spec_for(num_sinks: int, seed: int) -> RunSpec:
    return RunSpec(
        instance=InstanceSpec.from_random(num_sinks, seed=seed, groups=8),
        router=RouterSpec("ast-dme", {"skew_bound_ps": 10.0}),
        label="service-demo-n%d-s%d" % (num_sinks, seed),
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-service-") as cache_dir:
        config = ServiceConfig(port=0, cache_dir=cache_dir)
        with ServerThread(config) as server:
            client = ServiceClient(port=server.port)
            print("service up on port %d: %s" % (server.port, client.healthz()))
            print(
                "routers: %s"
                % ", ".join(entry["name"] for entry in client.routers())
            )

            # --- cold miss, then hot hit ---------------------------------
            spec = spec_for(800, seed=1)
            started = time.perf_counter()
            cold = client.route(spec)
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            hot = client.route(spec)
            hot_seconds = time.perf_counter() - started
            assert cold.cached is False and hot.cached is True
            assert hot.result.to_dict() == cold.result.to_dict()
            print(
                "cold miss %.2f s -> hot hit %.2f ms (x%.0f), byte-identical, "
                "key %s..."
                % (
                    cold_seconds,
                    1000.0 * hot_seconds,
                    cold_seconds / hot_seconds,
                    cold.key[:12],
                )
            )

            # --- a streamed batch: one warm spec, two fresh ones ----------
            batch = [spec, spec_for(400, seed=2), spec_for(400, seed=3)]
            print("streaming a batch of %d (1 already cached):" % len(batch))
            for event in client.iter_batch(batch):
                if isinstance(event, BatchEvent):
                    print(
                        "  run %d: cached=%-5s wirelength %.0f"
                        % (event.index, event.cached, event.result.wirelength)
                    )
                else:
                    print(
                        "  done: %(hits)d hit(s), %(misses)d miss(es), "
                        "%(errors)d error(s)" % event
                    )

            # --- the counters behind the speedup --------------------------
            stats = client.stats()
            cache = stats["cache"]
            latency = stats["server"]["latency"]
            print(
                "cache: %d lookups, hit rate %.2f, %d entr%s on disk (%d bytes)"
                % (
                    cache["requests"],
                    cache["hit_rate"],
                    cache["disk_entries"],
                    "y" if cache["disk_entries"] == 1 else "ies",
                    cache["disk_bytes"],
                )
            )
            print(
                "route latency over %d request(s): p50 %.2f ms, p99 %.2f ms"
                % (latency["count"], latency["p50_ms"], latency["p99_ms"])
            )


if __name__ == "__main__":
    main()
